"""Host CPU bookkeeping: core-time accounting and cycle conversions.

The reproduction does not need an instruction-accurate out-of-order core; the
paper itself drives Ramulator with instruction traces whose only relevant
effect is the rate and width of memory accesses.  What the host model *must*
provide is (1) how many cores are busy at any time -- this drives the Figure 4
CPU-utilization and system-power curves -- and (2) how fast a single software
thread can push copy chunks, which is captured by the per-chunk CPU cost in
:class:`repro.sim.config.CpuConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.sim.config import CpuConfig


@dataclass
class HostCpu:
    """Tracks busy-core intervals for utilization and energy accounting."""

    config: CpuConfig
    _busy_intervals: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def num_cores(self) -> int:
        return self.config.num_cores

    def cycles_to_ns(self, cycles: float) -> float:
        return self.config.cycles_to_ns(cycles)

    def record_busy_interval(self, start_ns: float, end_ns: float) -> None:
        """Record that one core was busy during ``[start_ns, end_ns)``."""
        if end_ns < start_ns:
            raise ValueError("interval end precedes start")
        if end_ns > start_ns:
            self._busy_intervals.append((start_ns, end_ns))

    def total_core_busy_ns(self) -> float:
        """Sum of busy core-time (core-ns) over all recorded intervals."""
        return sum(end - start for start, end in self._busy_intervals)

    def average_active_cores(self, start_ns: float, end_ns: float) -> float:
        """Average number of busy cores over ``[start_ns, end_ns)``."""
        window = end_ns - start_ns
        if window <= 0:
            return 0.0
        busy = 0.0
        for interval_start, interval_end in self._busy_intervals:
            overlap = min(interval_end, end_ns) - max(interval_start, start_ns)
            if overlap > 0:
                busy += overlap
        return min(float(self.num_cores), busy / window)

    def utilization(self, start_ns: float, end_ns: float) -> float:
        """Fraction of core capacity used over the window (0..1)."""
        return self.average_active_cores(start_ns, end_ns) / self.num_cores

    def active_core_series(
        self, window_ns: float, start_ns: float, end_ns: float
    ) -> List[float]:
        """Average active cores per time window (the Figure 4 left axis)."""
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        series: List[float] = []
        cursor = start_ns
        while cursor < end_ns:
            series.append(self.average_active_cores(cursor, min(cursor + window_ns, end_ns)))
            cursor += window_ns
        return series

    def reset(self) -> None:
        self._busy_intervals.clear()


__all__ = ["HostCpu"]
