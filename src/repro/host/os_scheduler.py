"""Round-robin OS thread scheduler with a fixed time quantum.

The paper models the baseline's multi-threaded ``dpu_push_xfer`` by letting 8
transfer operations run concurrently (one per CPU core) and preempting them
every 1.5 ms under a round-robin policy (§V), mirroring how a fairness-centric
OS scheduler (CFS) treats a large pool of runnable copy threads.  This module
implements exactly that scheduler; contender threads from Figure 13 join the
same run queue, which is how CPU-side resource contention reaches the transfer
threads.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Protocol

from repro.host.cpu import HostCpu
from repro.sim.engine import SimulationEngine


class SchedulableThread(Protocol):
    """Interface every software thread exposes to the scheduler."""

    name: str

    def on_scheduled(self, now_ns: float) -> None:
        """The thread just received a core and may start issuing work."""
        ...

    def on_preempted(self, now_ns: float) -> None:
        """The thread lost its core; it must stop issuing new work."""
        ...

    def is_finished(self) -> bool:
        """True once the thread has no work left (it then leaves the run queue)."""
        ...


class RoundRobinScheduler:
    """Shares ``num_cores`` cores among registered threads, quantum by quantum."""

    def __init__(
        self,
        engine: SimulationEngine,
        cpu: HostCpu,
        num_cores: Optional[int] = None,
        quantum_ns: float = 1_500_000.0,
    ) -> None:
        self.engine = engine
        self.cpu = cpu
        self.num_cores = num_cores if num_cores is not None else cpu.num_cores
        self.quantum_ns = quantum_ns
        self._ready: Deque[SchedulableThread] = deque()
        self._running: List[SchedulableThread] = []
        self._scheduled_since: Dict[str, float] = {}
        self._started = False
        self._stopped = False
        self._tick_event = None

    # ----------------------------------------------------------- registration
    def add_thread(self, thread: SchedulableThread) -> None:
        self._ready.append(thread)
        if self._started and not self._stopped:
            self._fill_free_cores()

    @property
    def running_threads(self) -> List[SchedulableThread]:
        return list(self._running)

    @property
    def runnable_count(self) -> int:
        return len(self._ready) + len(self._running)

    # ----------------------------------------------------------------- control
    def start(self) -> None:
        """Begin (or resume) scheduling; the first quantum starts immediately.

        Calling ``start`` while the scheduler is already running is harmless
        (newly added threads are simply placed on free cores), and calling it
        after :meth:`stop` resumes scheduling -- experiments that issue several
        transfers back to back on one system rely on this.
        """
        if self._started and not self._stopped:
            self._fill_free_cores()
            return
        self._started = True
        self._stopped = False
        self._fill_free_cores()
        self._schedule_tick()

    def stop(self) -> None:
        """Stop scheduling and preempt everything (end of experiment)."""
        self._stopped = True
        for thread in list(self._running):
            self._deschedule(thread)
        self._ready.clear()
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def reset(self) -> None:
        """Forget every registered thread and return to the pre-start state."""
        self.stop()
        self._running.clear()
        self._scheduled_since.clear()
        self._started = False
        self._stopped = False

    def notify_finished(self, thread: SchedulableThread) -> None:
        """A thread completed its work; free its core and run someone else."""
        if thread in self._running:
            self._deschedule(thread, finished=True)
        else:
            try:
                self._ready.remove(thread)
            except ValueError:
                pass
        if not self._stopped:
            self._fill_free_cores()

    # --------------------------------------------------------------- internals
    def _schedule_tick(self) -> None:
        if self._stopped:
            return
        self._tick_event = self.engine.schedule_after(self.quantum_ns, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        # Preempt everyone, rotate them to the back of the ready queue, and
        # hand the cores to the threads at the front (classic round-robin).
        if self._ready:
            for thread in list(self._running):
                self._deschedule(thread)
                self._ready.append(thread)
        self._fill_free_cores()
        self._schedule_tick()

    def _fill_free_cores(self) -> None:
        while len(self._running) < self.num_cores and self._ready:
            thread = self._ready.popleft()
            if thread.is_finished():
                continue
            self._running.append(thread)
            self._scheduled_since[thread.name] = self.engine.now
            thread.on_scheduled(self.engine.now)

    def _deschedule(self, thread: SchedulableThread, finished: bool = False) -> None:
        if thread not in self._running:
            return
        self._running.remove(thread)
        start = self._scheduled_since.pop(thread.name, self.engine.now)
        self.cpu.record_busy_interval(start, self.engine.now)
        if not finished:
            thread.on_preempted(self.engine.now)


__all__ = ["RoundRobinScheduler", "SchedulableThread"]
