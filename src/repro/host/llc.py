"""Shared last-level cache model (Table I: 8 MB, 16-way, 64 B lines).

The LLC matters to the reproduction in two places: (1) memory requests that
target the PIM address space are *non-cacheable* and always bypass it, while
normal DRAM requests may hit; and (2) cache accesses contribute dynamic energy
in the Figure 15(b) breakdown.  A set-associative LRU model is sufficient for
both -- the baseline transfer's streaming reads miss essentially always, and
the compute contenders of Figure 13(a) hit essentially always, which is what
the paper describes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict

from repro.sim.config import CACHE_LINE_BYTES, CpuConfig


@dataclass
class LastLevelCache:
    """Set-associative LRU last-level cache."""

    capacity_bytes: int
    associativity: int
    hit_latency_ns: float = 12.0
    _sets: Dict[int, "OrderedDict[int, bool]"] = field(default_factory=dict, repr=False)
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def __post_init__(self) -> None:
        lines = self.capacity_bytes // CACHE_LINE_BYTES
        if lines % self.associativity != 0:
            raise ValueError("capacity must be divisible by associativity * line size")
        self.num_sets = lines // self.associativity

    @classmethod
    def from_config(cls, config: CpuConfig) -> "LastLevelCache":
        return cls(
            capacity_bytes=config.llc_capacity_bytes,
            associativity=config.llc_assoc,
            hit_latency_ns=config.llc_hit_latency_ns,
        )

    def _set_index(self, phys_addr: int) -> int:
        return (phys_addr // CACHE_LINE_BYTES) % self.num_sets

    def _tag(self, phys_addr: int) -> int:
        return phys_addr // CACHE_LINE_BYTES // self.num_sets

    def access(self, phys_addr: int, is_write: bool = False) -> bool:
        """Look up ``phys_addr``; allocate on miss.  Returns True on a hit."""
        set_index = self._set_index(phys_addr)
        tag = self._tag(phys_addr)
        cache_set = self._sets.setdefault(set_index, OrderedDict())
        if tag in cache_set:
            cache_set.move_to_end(tag)
            cache_set[tag] = cache_set[tag] or is_write
            self.hits += 1
            return True
        self.misses += 1
        cache_set[tag] = is_write
        if len(cache_set) > self.associativity:
            cache_set.popitem(last=False)
            self.evictions += 1
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        """Invalidate the whole cache and zero the counters."""
        self._sets.clear()
        self.reset_stats()


__all__ = ["LastLevelCache"]
