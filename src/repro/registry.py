"""Generic variant registry: one mechanism behind every pluggable axis.

The reproduction grew five independent "variant" axes -- scheduler policies
(:mod:`repro.memctrl.policies`), DRAM service kernels
(:mod:`repro.memctrl.kernel`), transfer pumps (:mod:`repro.memctrl.pump`),
transfer backends (:mod:`repro.api.backends`) and the interconnect fabric
(:mod:`repro.fabric`).  Each axis historically carried its own registry dict,
spec-string parser and error wording; :class:`VariantRegistry` is the one
implementation they all share now, parameterised by the small pieces that
legitimately differ (axis name, error type, ``registered``/``available``
wording, whether specs carry ``:args`` suffixes).

Spec-string grammar
-------------------
A variant *spec* is a plain string -- picklable, cache-key friendly and
CLI-friendly::

    name                     # e.g. "frfcfs", "soa", "none"
    name:args                # e.g. "frfcfs_cap:8", "mesh:4x4"
    name:pos,key=val,...     # e.g. "mesh:4x4,hop_ns=2.0,credits=4"

Names are case-insensitive with ``-`` ignored (``FR-FCFS`` resolves to
``frfcfs``) on axes that opt into normalisation.  Unknown names raise the
axis's error type with the registered names and, when a near-miss exists, a
did-you-mean suggestion.  :func:`parse_typed_kv` is the shared typed
``key=val,...`` argument parser.

:class:`Variants` is the typed bundle of one spec per axis, accepted by
:class:`repro.api.Session`, :class:`~repro.api.session.SessionBuilder` and
every experiment/scenario spec that threads variant knobs -- the replacement
for the historical ``memctrl_policy=``/``memctrl_kernel=``/
``transfer_pump=`` keyword sprawl.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple


class _Entry:
    __slots__ = ("name", "factory", "description")

    def __init__(self, name: str, factory: Callable, description: str) -> None:
        self.name = name
        self.factory = factory
        self.description = description


class VariantRegistry:
    """String-keyed registry of one variant axis.

    Parameters
    ----------
    axis:
        Human-readable axis name used in error messages
        (``"scheduler policy"``, ``"transfer pump"``, ...).
    error:
        Exception type raised for unknown specs (``KeyError`` or
        ``ValueError``; the historical per-axis types are preserved).
    known_label:
        The word introducing the known-names list in the unknown-spec error
        (``"registered"`` or ``"available"``).
    dup_label:
        The axis word used in the duplicate-registration error (defaults to
        ``axis``).
    normalize_names:
        When true, names are canonicalised (lower-case, ``-`` stripped)
        before lookup; when false, lookups are exact.
    parse_specs:
        When true, specs are split at the first ``:`` into ``(name, args)``
        and factories are called as ``factory(args_or_None)``; when false,
        the whole spec is the name and factories take no arguments.
    sort_names:
        When true, :meth:`names` (and error listings) are sorted; otherwise
        registration order is kept.
    """

    def __init__(
        self,
        axis: str,
        *,
        error: type = KeyError,
        known_label: str = "registered",
        dup_label: Optional[str] = None,
        normalize_names: bool = True,
        parse_specs: bool = True,
        sort_names: bool = False,
    ) -> None:
        self.axis = axis
        self._error = error
        self._known_label = known_label
        self._dup_label = dup_label if dup_label is not None else axis
        self._normalize = normalize_names
        self._parse = parse_specs
        self._sort = sort_names
        self._entries: Dict[str, _Entry] = {}

    # -------------------------------------------------------------- spellings
    def normalize(self, name: str) -> str:
        """Canonical spelling of ``name`` under this axis's rules."""
        if not self._normalize:
            return name
        return name.strip().lower().replace("-", "")

    def parse(self, spec: str) -> Tuple[str, Optional[str]]:
        """Split ``name[:args]`` into ``(canonical_name, args_or_None)``."""
        if not self._parse:
            return self.normalize(spec), None
        name, _, args = spec.partition(":")
        return self.normalize(name), (args if args else None)

    # ------------------------------------------------------------ registration
    def register(
        self,
        name: str,
        factory: Callable,
        description: str = "",
        *,
        replace: bool = False,
    ) -> None:
        """Register ``factory`` under ``name`` (``replace=True`` to override)."""
        if not replace and name in self._entries:
            raise ValueError(f"{self._dup_label} {name!r} is already registered")
        self._entries[name] = _Entry(name, factory, description)

    def unregister(self, name: str) -> None:
        """Remove a registered variant (primarily for tests).  Idempotent."""
        self._entries.pop(name, None)

    # ---------------------------------------------------------------- listing
    def names(self) -> List[str]:
        """Registered names (sorted or in registration order per the axis)."""
        names = list(self._entries)
        return sorted(names) if self._sort else names

    def description(self, name: str) -> str:
        """One-line description of a registered variant."""
        return self._entries[name].description

    def items(self) -> List[Tuple[str, str]]:
        """``(name, description)`` pairs in :meth:`names` order."""
        return [(name, self._entries[name].description) for name in self.names()]

    def __contains__(self, spec: str) -> bool:
        name, _ = self.parse(spec)
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ----------------------------------------------------------------- errors
    def unknown(self, spec: str) -> Exception:
        """The error raised for an unknown spec (with a did-you-mean hint)."""
        known = ", ".join(self.names())
        message = f"unknown {self.axis} {spec!r}; {self._known_label}: {known}"
        name, _ = self.parse(spec)
        close = difflib.get_close_matches(name, list(self._entries), n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        return self._error(message)

    # --------------------------------------------------------------- creation
    def require(self, spec: str) -> str:
        """Validate ``spec``, returning it unchanged (membership check only)."""
        name, _ = self.parse(spec)
        if name not in self._entries:
            raise self.unknown(spec)
        return spec

    def create(self, spec: str) -> Any:
        """Run the factory registered for ``spec``.

        Spec-parsing axes call ``factory(args_or_None)``; exact-name axes
        call ``factory()``.
        """
        name, args = self.parse(spec)
        entry = self._entries.get(name)
        if entry is None:
            raise self.unknown(spec) from None
        return entry.factory(args) if self._parse else entry.factory()


def parse_typed_kv(
    args: Optional[str],
    schema: Dict[str, Callable[[str], Any]],
    context: str,
) -> Dict[str, Any]:
    """Parse a ``key=val,key=val`` argument string against a typed schema.

    ``schema`` maps each accepted key to its converter (``int``, ``float``,
    ``str``, ...).  Unknown keys, malformed entries and conversion failures
    raise ``ValueError`` mentioning ``context`` (the variant being parsed).
    """
    values: Dict[str, Any] = {}
    if not args:
        return values
    for item in args.split(","):
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(
                f"cannot parse {context} argument {item!r}; expected 'key=value' "
                f"with keys from: {', '.join(schema)}"
            )
        if key not in schema:
            raise ValueError(
                f"unknown {context} argument {key!r}; accepted: "
                + ", ".join(schema)
            )
        try:
            values[key] = schema[key](raw.strip())
        except (TypeError, ValueError):
            raise ValueError(
                f"bad value {raw.strip()!r} for {context} argument {key!r}"
            ) from None
    return values


@dataclass(frozen=True)
class Variants:
    """Typed bundle of variant specs, one per pluggable axis.

    Every field is an optional spec string; ``None`` means "keep the config's
    current value".  Accepted by :meth:`repro.api.Session.open`,
    :class:`~repro.api.session.SessionBuilder` and the experiment/scenario
    specs (``TransferSpec``/``Sweep``/``ScenarioSpec``/``ServingSpec``) in
    place of the deprecated ``memctrl_policy=``/``memctrl_kernel=``/
    ``transfer_pump=`` keywords::

        Session.open(variants=Variants(policy="frfcfs_cap:8", fabric="mesh:4x4"))
    """

    policy: Optional[str] = None
    kernel: Optional[str] = None
    pump: Optional[str] = None
    fabric: Optional[str] = None

    def validate(self) -> "Variants":
        """Fail fast on any unknown spec; returns ``self`` for chaining."""
        if self.policy is not None:
            from repro.memctrl.policies import create_policy

            create_policy(self.policy)
        if self.kernel is not None:
            from repro.memctrl.kernel import kernel_class

            kernel_class(self.kernel)
        if self.pump is not None:
            from repro.memctrl.pump import validate_pump

            validate_pump(self.pump)
        if self.fabric is not None:
            from repro.fabric import validate_fabric

            validate_fabric(self.fabric)
        return self

    def apply(self, config):
        """``config`` with every non-``None`` axis replaced into ``memctrl``.

        Validates first, so an unknown spec raises before any run starts.
        The input ``SystemConfig`` is never mutated (frozen dataclasses).
        """
        self.validate()
        updates = {}
        if self.policy is not None:
            updates["policy"] = self.policy
        if self.kernel is not None:
            updates["kernel"] = self.kernel
        if self.pump is not None:
            updates["transfer_pump"] = self.pump
        if self.fabric is not None:
            updates["fabric"] = self.fabric
        if not updates:
            return config
        from dataclasses import replace

        return replace(config, memctrl=replace(config.memctrl, **updates))

    def merged_over(self, base: Optional["Variants"]) -> "Variants":
        """``self`` with ``None`` fields filled from ``base`` (if any)."""
        if base is None:
            return self
        return Variants(
            policy=self.policy if self.policy is not None else base.policy,
            kernel=self.kernel if self.kernel is not None else base.kernel,
            pump=self.pump if self.pump is not None else base.pump,
            fabric=self.fabric if self.fabric is not None else base.fabric,
        )

    @property
    def empty(self) -> bool:
        return (
            self.policy is None
            and self.kernel is None
            and self.pump is None
            and self.fabric is None
        )


__all__ = ["VariantRegistry", "Variants", "parse_typed_kv"]
