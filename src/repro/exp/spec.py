"""Declarative experiment specifications.

Every simulation the figure suite needs is described by a small frozen
dataclass -- an :class:`ExperimentSpec` -- that captures *what* to run,
independently of *where* it runs.  Specs are:

* **hashable and comparable**, so identical experiments requested by
  different figures deduplicate to a single simulation;
* **picklable**, so a :class:`~repro.exp.runner.ParallelRunner` can ship them
  to ``ProcessPoolExecutor`` workers (each worker builds its own
  :class:`~repro.sim.engine.SimulationEngine`; the engine is deterministic
  and self-contained, so a worker's result is identical to an in-process run);
* **stably reprable**, so the on-disk cache can key results on
  ``(SystemConfig, spec, code-version)`` across interpreter runs.

:class:`TransferSpec` additionally knows how to *canonicalise* itself to the
steady-state window that is actually simulated (``window``): requested sizes
beyond ``sim_cap_bytes`` are extrapolated from the simulated window by
:func:`repro.workloads.microbench.extrapolate_experiment`, so a single cached
window serves every larger requested size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.registry import Variants
from repro.sim.config import DcePolicy, DesignPoint, SystemConfig
from repro.system import build_system
from repro.transfer.descriptor import TransferDescriptor, TransferDirection
from repro.workloads.microbench import (
    ContenderFactory,
    TransferExperiment,
    per_core_bytes,
    run_transfer_experiment,
)
from repro.workloads.patterns import AccessPattern, measure_read_bandwidth

KIB = 1024
MIB = 1024 * 1024

#: Bytes actually simulated per transfer experiment; larger requested sizes
#: are extrapolated from this steady-state window (same rule the paper's
#: hybrid methodology applies to PIM kernels).  Re-exported from the facade
#: so Session.transfer and TransferSpec share one default.
from repro.api.session import DEFAULT_SIM_CAP_BYTES  # noqa: E402


def _expand_variants(spec) -> None:
    """Expand a spec's ``variants`` bundle into its per-axis fields.

    Frozen specs accept either style -- individual ``memctrl_policy=``/
    ``memctrl_kernel=``/``transfer_pump=``/``fabric=`` fields or one
    ``variants=Variants(...)`` -- and normalise to the per-axis fields, with
    ``variants`` cleared back to ``None``.  A canonical form means two specs
    describing the same run have the same repr, hash and cache key.  Bundle
    fields win over individually-passed fields.
    """
    bundle = getattr(spec, "variants", None)
    if bundle is None:
        return
    if bundle.policy is not None:
        object.__setattr__(spec, "memctrl_policy", bundle.policy)
    if bundle.kernel is not None:
        object.__setattr__(spec, "memctrl_kernel", bundle.kernel)
    if bundle.pump is not None:
        object.__setattr__(spec, "transfer_pump", bundle.pump)
    if bundle.fabric is not None:
        object.__setattr__(spec, "fabric", bundle.fabric)
    object.__setattr__(spec, "variants", None)


@dataclass(frozen=True)
class ContentionSpec:
    """Declarative description of the co-located contender workloads.

    Figure 13 sweeps contenders that are built per-system by closures
    (:mod:`repro.workloads.contention`); closures cannot cross process
    boundaries, so specs carry this declarative form instead and rebuild the
    factory inside the worker.
    """

    kind: str  # "compute" (spin-lock CPU hogs) or "memory" (DRAM streamers)
    count: int
    intensity: Optional[str] = None
    buffer_bytes: int = 8 * MIB

    def __post_init__(self) -> None:
        if self.kind not in ("compute", "memory"):
            raise ValueError(f"unknown contention kind: {self.kind!r}")
        if self.count < 0:
            raise ValueError("contender count must be non-negative")
        if self.kind == "memory" and self.intensity is None:
            raise ValueError("memory contention requires an intensity")

    def factory(self) -> ContenderFactory:
        from repro.host.contenders import create_contender_factory

        if self.kind == "compute":
            return create_contender_factory("compute", count=self.count)
        return create_contender_factory(
            "memory",
            count=self.count,
            intensity=self.intensity,
            buffer_bytes=self.buffer_bytes,
        )

    @property
    def label(self) -> str:
        if self.kind == "compute":
            return f"compute x{self.count}"
        return f"memory x{self.count} ({self.intensity})"


class ExperimentSpec:
    """Base class for all experiment specifications.

    Subclasses are frozen dataclasses; ``KIND`` namespaces the cache key and
    ``run`` executes the experiment against a configuration, returning a
    picklable outcome.
    """

    KIND = "abstract"

    def run(self, config: SystemConfig):
        raise NotImplementedError


@dataclass(frozen=True)
class TransferSpec(ExperimentSpec):
    """One DRAM<->PIM bulk-transfer experiment (Figures 4, 13, 15, 16)."""

    KIND = "transfer"

    design_point: DesignPoint
    direction: TransferDirection
    total_bytes: int
    sim_cap_bytes: int = DEFAULT_SIM_CAP_BYTES
    contention: Optional[ContentionSpec] = None
    scheduling_quantum_ns: Optional[float] = None
    #: Memory-scheduler policy spec (``None`` keeps the config's default,
    #: FR-FCFS).  See :mod:`repro.memctrl.policies` / ``repro policies``.
    memctrl_policy: Optional[str] = None
    #: DRAM service-kernel implementation (``None`` keeps the config's
    #: default; ``object``/``soa`` are bit-identical, ``soa`` is faster).
    memctrl_kernel: Optional[str] = None
    #: Transfer pump (``None`` keeps the config's default; ``object``/
    #: ``burst`` are bit-identical, ``burst`` vectorizes issue).
    transfer_pump: Optional[str] = None
    #: Interconnect fabric spec (``None`` keeps the config's default,
    #: ``none``).  See :mod:`repro.fabric` / ``repro variants``.
    fabric: Optional[str] = None
    #: Typed variant bundle (:class:`repro.registry.Variants`); expanded into
    #: the per-axis fields at construction so the spec's repr (and therefore
    #: its cache key) has one canonical form regardless of input style.
    variants: Optional[Variants] = None

    def __post_init__(self) -> None:
        _expand_variants(self)

    def window(self, config: SystemConfig) -> "TransferSpec":
        """The canonical spec for the steady-state window actually simulated.

        Requests at or below the cap canonicalise to themselves; larger
        requests canonicalise to the capped window, whose cached result can be
        extrapolated to any requested size.
        """
        cores = config.num_pim_cores
        requested = per_core_bytes(self.total_bytes, cores)
        simulated = min(requested, per_core_bytes(self.sim_cap_bytes, cores))
        return replace(self, total_bytes=simulated * cores)

    def run(self, config: SystemConfig) -> TransferExperiment:
        factory = self.contention.factory() if self.contention is not None else None
        return run_transfer_experiment(
            self.design_point,
            self.direction,
            total_bytes=self.total_bytes,
            config=config,
            sim_cap_bytes=self.sim_cap_bytes,
            contender_factory=factory,
            scheduling_quantum_ns=self.scheduling_quantum_ns,
            memctrl_policy=self.memctrl_policy,
            memctrl_kernel=self.memctrl_kernel,
            transfer_pump=self.transfer_pump,
            fabric=self.fabric,
        )


@dataclass(frozen=True)
class MemcpySpec(ExperimentSpec):
    """A multi-threaded DRAM->DRAM copy (Figure 14, Figure 6b).

    ``channels``/``ranks_per_channel`` optionally re-derive the memory
    geometry (Figure 14's xC-yR sweep); ``series_windows`` additionally
    samples the per-channel write-traffic time series (Figure 6b).
    """

    KIND = "memcpy"

    design_point: DesignPoint
    total_bytes: int
    src_base: int = 0
    dst_base: Optional[int] = None
    channels: Optional[int] = None
    ranks_per_channel: Optional[int] = None
    series_windows: Optional[int] = None

    def run(self, config: SystemConfig) -> Dict[str, object]:
        from repro.api.backends import CopySpan, create_backend

        if self.channels is not None:
            config = config.with_memory_geometry(self.channels, self.ranks_per_channel)
        system = build_system(config=config, design_point=self.design_point)
        dst_base = self.dst_base if self.dst_base is not None else self.total_bytes
        result = create_backend("memcpy").execute(
            system,
            CopySpan(
                src_base=self.src_base, dst_base=dst_base, total_bytes=self.total_bytes
            ),
        )
        outcome: Dict[str, object] = {
            "duration_ns": result.duration_ns,
            "start_ns": result.start_ns,
            "end_ns": result.end_ns,
            "dram_read_bytes": result.dram_read_bytes,
            "dram_write_bytes": result.dram_write_bytes,
            "per_channel_dram_bytes": dict(result.per_channel_dram_bytes),
        }
        if self.series_windows:
            window_ns = result.duration_ns / self.series_windows
            outcome["write_window_series"] = system.dram.per_channel_window_series(
                window_ns, "write", result.start_ns, result.end_ns
            )
        return outcome


@dataclass(frozen=True)
class SoftwareTransferSeriesSpec(ExperimentSpec):
    """A software DRAM->PIM transfer sampled as a per-channel time series (Figure 6a)."""

    KIND = "software-series"

    size_per_core_bytes: int = 1024
    series_windows: int = 8

    def run(self, config: SystemConfig) -> Dict[str, object]:
        from repro.api.backends import create_backend

        system = build_system(config=config, design_point=DesignPoint.BASELINE)
        descriptor = TransferDescriptor.contiguous(
            TransferDirection.DRAM_TO_PIM,
            dram_base=0,
            size_per_core_bytes=self.size_per_core_bytes,
            pim_core_ids=range(config.num_pim_cores),
        )
        result = create_backend("software").execute(system, descriptor)
        window_ns = result.duration_ns / self.series_windows
        series = system.pim.per_channel_window_series(
            window_ns, "write", result.start_ns, result.end_ns
        )
        return {
            "duration_ns": result.duration_ns,
            "start_ns": result.start_ns,
            "end_ns": result.end_ns,
            "per_channel_pim_bytes": dict(result.per_channel_pim_bytes),
            "write_window_series": series,
        }


@dataclass(frozen=True)
class ReadBandwidthSpec(ExperimentSpec):
    """Sustained DRAM read bandwidth for one access pattern (Figure 8)."""

    KIND = "read-bandwidth"

    pattern: AccessPattern
    design_point: DesignPoint
    total_bytes: int = 2 * MIB
    stride_bytes: int = 4096

    def run(self, config: SystemConfig) -> float:
        system = build_system(config=config, design_point=self.design_point)
        return measure_read_bandwidth(
            system,
            self.pattern,
            total_bytes=self.total_bytes,
            stride_bytes=self.stride_bytes,
        )


@dataclass(frozen=True)
class DceOrderSpec(ExperimentSpec):
    """DCE throughput under an explicit issue order / buffer size (design ablations)."""

    KIND = "dce-ablation"

    policy: DcePolicy
    data_buffer_bytes: Optional[int] = None
    size_per_core_bytes: int = 1 * KIB

    def run(self, config: SystemConfig) -> float:
        from repro.api.backends import create_backend

        if self.data_buffer_bytes is not None:
            config = replace(
                config,
                pim_mmu=replace(config.pim_mmu, data_buffer_bytes=self.data_buffer_bytes),
            )
        system = build_system(config=config, design_point=DesignPoint.BASE_DHP)
        descriptor = TransferDescriptor.contiguous(
            TransferDirection.DRAM_TO_PIM,
            dram_base=0,
            size_per_core_bytes=self.size_per_core_bytes,
            pim_core_ids=range(config.num_pim_cores),
        )
        backend = create_backend(
            "pim_mmu" if self.policy is DcePolicy.PIM_MS else "dce_serial"
        )
        result = backend.execute(system, descriptor)
        return result.throughput_gbps


@dataclass(frozen=True)
class SoftwareThreadPolicySpec(ExperimentSpec):
    """Baseline software-transfer throughput under a thread-to-DPU policy (ablations)."""

    KIND = "software-thread-policy"

    thread_policy: str = "blocked"
    size_per_core_bytes: int = 1 * KIB

    def run(self, config: SystemConfig) -> float:
        from repro.api.backends import create_backend

        config = replace(
            config, os=replace(config.os, thread_to_dpu_policy=self.thread_policy)
        )
        system = build_system(config=config, design_point=DesignPoint.BASELINE)
        descriptor = TransferDescriptor.contiguous(
            TransferDirection.DRAM_TO_PIM,
            dram_base=0,
            size_per_core_bytes=self.size_per_core_bytes,
            pim_core_ids=range(config.num_pim_cores),
        )
        result = create_backend("software").execute(system, descriptor)
        return result.throughput_gbps


@dataclass(frozen=True)
class Sweep:
    """A declarative grid of transfer experiments.

    Enumerates the cartesian product of design points x directions x sizes x
    contention scenarios, in a deterministic order, as :class:`TransferSpec`
    instances ready to hand to a runner or provider.
    """

    design_points: Tuple[DesignPoint, ...] = tuple(DesignPoint)
    directions: Tuple[TransferDirection, ...] = tuple(TransferDirection)
    sizes: Tuple[int, ...] = (1 * MIB,)
    contentions: Tuple[Optional[ContentionSpec], ...] = (None,)
    sim_cap_bytes: int = DEFAULT_SIM_CAP_BYTES
    scheduling_quantum_ns: Optional[float] = None
    memctrl_policy: Optional[str] = None
    memctrl_kernel: Optional[str] = None
    transfer_pump: Optional[str] = None
    fabric: Optional[str] = None
    variants: Optional[Variants] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "design_points", tuple(self.design_points))
        object.__setattr__(self, "directions", tuple(self.directions))
        object.__setattr__(self, "sizes", tuple(self.sizes))
        object.__setattr__(self, "contentions", tuple(self.contentions))
        _expand_variants(self)

    def __len__(self) -> int:
        return (
            len(self.design_points)
            * len(self.directions)
            * len(self.sizes)
            * len(self.contentions)
        )

    def specs(self) -> List[TransferSpec]:
        return [
            TransferSpec(
                design_point=point,
                direction=direction,
                total_bytes=size,
                sim_cap_bytes=self.sim_cap_bytes,
                contention=contention,
                scheduling_quantum_ns=self.scheduling_quantum_ns,
                memctrl_policy=self.memctrl_policy,
                memctrl_kernel=self.memctrl_kernel,
                transfer_pump=self.transfer_pump,
                fabric=self.fabric,
            )
            for point, direction, size, contention in itertools.product(
                self.design_points, self.directions, self.sizes, self.contentions
            )
        ]


__all__ = [
    "DEFAULT_SIM_CAP_BYTES",
    "ContentionSpec",
    "DceOrderSpec",
    "ExperimentSpec",
    "MemcpySpec",
    "ReadBandwidthSpec",
    "SoftwareThreadPolicySpec",
    "SoftwareTransferSeriesSpec",
    "Sweep",
    "TransferSpec",
]
