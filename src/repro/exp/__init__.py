"""Experiment orchestration: declarative sweeps, parallel runners, caching.

This package is the one orchestration path shared by the pytest benchmark
suite, the ``python -m repro`` CLI, and future sharded workers:

* :mod:`repro.exp.spec` -- declarative, picklable experiment specifications
  (:class:`TransferSpec`, :class:`Sweep`, ...);
* :mod:`repro.exp.runner` -- :class:`ParallelRunner` (fault-tolerant
  :mod:`repro.fleet` fan-out with a serial fallback) and the memoising
  :class:`ExperimentProvider`;
* :mod:`repro.exp.cache` -- the on-disk result cache under
  ``results/.cache`` keyed by ``(SystemConfig, spec, code-version)``;
* :mod:`repro.exp.figures` -- every paper table/figure as a declarative
  compute/render pair;
* :mod:`repro.exp.cli` -- the ``repro figures`` / ``repro sweep`` /
  ``repro clean-cache`` command line.
"""

from repro.exp.cache import CACHE_DIR_NAME, MISS, ResultCache, code_version, spec_key
from repro.exp.figures import FIGURES, Figure, generate_figures, select_figures, write_figure
from repro.exp.runner import ExperimentProvider, ParallelRunner, ProviderStats, default_jobs
from repro.exp.spec import (
    DEFAULT_SIM_CAP_BYTES,
    ContentionSpec,
    DceOrderSpec,
    ExperimentSpec,
    MemcpySpec,
    ReadBandwidthSpec,
    SoftwareThreadPolicySpec,
    SoftwareTransferSeriesSpec,
    Sweep,
    TransferSpec,
)

__all__ = [
    "CACHE_DIR_NAME",
    "DEFAULT_SIM_CAP_BYTES",
    "FIGURES",
    "MISS",
    "ContentionSpec",
    "DceOrderSpec",
    "ExperimentProvider",
    "ExperimentSpec",
    "Figure",
    "MemcpySpec",
    "ParallelRunner",
    "ProviderStats",
    "ReadBandwidthSpec",
    "ResultCache",
    "SoftwareThreadPolicySpec",
    "SoftwareTransferSeriesSpec",
    "Sweep",
    "TransferSpec",
    "code_version",
    "default_jobs",
    "generate_figures",
    "select_figures",
    "spec_key",
    "write_figure",
]
