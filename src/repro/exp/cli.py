"""``python -m repro`` -- regenerate the paper's figures outside pytest.

Subcommands
-----------
``repro figures [NAME...]``
    Regenerate all (or a subset of) the paper's tables/figures under
    ``results/``, fanning simulations out over ``-j`` worker processes and
    reusing the on-disk cache, so a warm rerun executes zero simulations.
``repro sweep``
    Run an ad-hoc grid of transfer experiments and print the result table.
``repro scenarios [NAME...]``
    Run registered multi-tenant scenarios (per-tenant tables under
    ``results/``), or an ad-hoc mix given via ``--tenants``/``--trace``.

``figures``/``sweep``/``scenarios`` execute through the fault-tolerant
:mod:`repro.fleet` engine: ``--shard I/N`` deterministically partitions the
work across CI jobs or machines, ``--resume`` replays the streaming journal
under ``<results-dir>/.fleet`` so an interrupted sweep continues where it
stopped, and ``--task-timeout``/``--retries`` bound how long a hung worker
task may run and how often it is re-attempted before the command exits
non-zero naming the failed spec.

``repro backends``
    List the registered transfer backends and which design point each one is
    the default for.
``repro variants``
    List every registered variant axis -- memory-scheduler policies
    (``--policy`` / ``Variants(policy=...)``), DRAM service kernels
    (``--kernel``), transfer pumps (``--transfer-pump``), transfer backends
    and interconnect fabrics (``--fabric`` / :mod:`repro.fabric`).  Every
    listed spec round-trips through :class:`repro.registry.Variants`.
``repro policies``
    Deprecated alias: the policy/kernel/pump subset of ``repro variants``,
    kept with byte-identical output for scripts that parse it.
``repro bench``
    Run the fixed hot-path benchmark matrix (events/sec + wall-clock) and
    append the result to the committed ``BENCH_hotpath.json`` trajectory;
    ``--quick --check`` is the CI perf-smoke gate, ``--compare-kernels``
    asserts the SoA kernel beats the object kernel on the same matrix, and
    ``--compare-fabric`` asserts the ``fabric=none`` pass-through stays
    within 2% of the default configuration.
``repro clean-cache``
    Delete the on-disk experiment cache (``results/.cache``) and the fleet
    journals (``results/.fleet``).

Every subcommand builds one :class:`repro.api.Session` and drives its
simulations through the session's experiment provider.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.sim.config import DesignPoint, SystemConfig
from repro.transfer.descriptor import TransferDirection

from repro.exp.cache import CACHE_DIR_NAME, ResultCache
from repro.exp.figures import FIGURES, generate_figures, select_figures
from repro.exp.runner import ExperimentProvider
from repro.exp.spec import DEFAULT_SIM_CAP_BYTES, ContentionSpec, Sweep
from repro.fleet import (
    FLEET_DIR_NAME,
    FleetError,
    FleetJournal,
    FleetProgress,
    Shard,
    parse_shard,
    shard_items,
)

_SIZE_SUFFIXES = {
    "kib": 1024,
    "kb": 1024,
    "k": 1024,
    "mib": 1024**2,
    "mb": 1024**2,
    "m": 1024**2,
    "gib": 1024**3,
    "gb": 1024**3,
    "g": 1024**3,
}

_DESIGN_POINT_ALIASES = {
    "base": DesignPoint.BASELINE,
    "baseline": DesignPoint.BASELINE,
    "base+d": DesignPoint.BASE_D,
    "base_d": DesignPoint.BASE_D,
    "base+d+h": DesignPoint.BASE_DH,
    "base_dh": DesignPoint.BASE_DH,
    "base+d+h+p": DesignPoint.BASE_DHP,
    "base_dhp": DesignPoint.BASE_DHP,
    "pim-mmu": DesignPoint.BASE_DHP,
}

_DIRECTION_ALIASES = {
    "d2p": (TransferDirection.DRAM_TO_PIM,),
    "dram-to-pim": (TransferDirection.DRAM_TO_PIM,),
    "p2d": (TransferDirection.PIM_TO_DRAM,),
    "pim-to-dram": (TransferDirection.PIM_TO_DRAM,),
    "both": (TransferDirection.DRAM_TO_PIM, TransferDirection.PIM_TO_DRAM),
}


def parse_size(text: str) -> int:
    """Parse ``512KiB`` / ``16MB`` / ``4096`` into bytes."""
    cleaned = text.strip().lower().replace(" ", "")
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)]
            try:
                return int(float(number) * _SIZE_SUFFIXES[suffix])
            except ValueError:
                break
    try:
        return int(cleaned)
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}")


def parse_design_point(text: str) -> DesignPoint:
    """Parse ``Base+D+H+P`` / ``base_dhp`` / ``pim-mmu`` into a design point."""
    key = text.strip().lower()
    if key in _DESIGN_POINT_ALIASES:
        return _DESIGN_POINT_ALIASES[key]
    raise argparse.ArgumentTypeError(
        f"unknown design point {text!r}; choose from "
        + ", ".join(sorted(set(_DESIGN_POINT_ALIASES)))
    )


def parse_contention(text: str) -> Optional[ContentionSpec]:
    """Parse ``none`` / ``compute:8`` / ``memory:4:high`` into a spec."""
    cleaned = text.strip().lower()
    if cleaned in ("", "none"):
        return None
    parts = cleaned.split(":")
    kind = parts[0]
    try:
        if kind == "compute" and len(parts) == 2:
            return ContentionSpec("compute", int(parts[1]))
        if kind == "memory" and len(parts) == 3:
            return ContentionSpec("memory", int(parts[1]), parts[2])
    except ValueError:
        pass
    raise argparse.ArgumentTypeError(
        f"cannot parse contention {text!r}; expected 'none', 'compute:<count>' "
        "or 'memory:<count>:<intensity>'"
    )


def parse_tenant(text: str) -> "TenantSpec":
    """Parse one ``--tenants`` item into a :class:`TenantSpec`.

    Forms (sizes accept the usual ``512KiB``/``16MB`` suffixes; an optional
    trailing ``:+<ns>`` delays the tenant's start):

    * ``transfer:<size>[:d2p|:p2d]`` -- bulk DRAM<->PIM transfer
    * ``memcpy:<size>``              -- multi-threaded DRAM->DRAM copy
    * ``prim:<WORKLOAD>[:<cap>]``    -- a PrIM workload's input push
    * ``uniform|bursty|skewed|phased|poisson|diurnal:<size>`` -- open-loop
      synthetic trace tenant
    * ``closed:<pattern>:<size>[:<clients>]`` -- closed-loop tenant
      (``<clients>`` one-outstanding clients, zero think time)
    """
    from repro.scenarios.tenant import TenantSpec
    from repro.scenarios.trace import TRACE_PATTERNS
    from repro.workloads.prim import PRIM_WORKLOADS

    parts = [part for part in text.strip().split(":") if part != ""]
    offset_ns = 0.0
    if len(parts) > 1 and parts[-1].startswith("+"):
        try:
            offset_ns = float(parts.pop()[1:])
        except ValueError:
            raise argparse.ArgumentTypeError(f"cannot parse start offset in {text!r}")
    try:
        kind = parts[0].lower()
        # Placeholder name; cmd_scenarios renames tenants by list position so
        # ad-hoc spec names (and cache keys) are stable across invocations.
        name = kind
        if kind == "transfer" and len(parts) in (2, 3):
            direction = TransferDirection.DRAM_TO_PIM
            if len(parts) == 3:
                directions = _DIRECTION_ALIASES[parts[2].lower()]
                if len(directions) != 1:
                    raise KeyError(parts[2])
                direction = directions[0]
            return TenantSpec.transfer(
                name, parse_size(parts[1]), direction=direction,
                start_offset_ns=offset_ns,
            )
        if kind == "memcpy" and len(parts) == 2:
            return TenantSpec.memcpy(
                name, parse_size(parts[1]), start_offset_ns=offset_ns
            )
        if kind == "prim" and len(parts) in (2, 3):
            workload = parts[1].upper()
            if workload not in PRIM_WORKLOADS:
                raise argparse.ArgumentTypeError(
                    f"unknown PrIM workload {parts[1]!r}; known: "
                    + ", ".join(PRIM_WORKLOADS)
                )
            cap = parse_size(parts[2]) if len(parts) == 3 else 1024**2
            return TenantSpec.prim(
                name, workload, cap_bytes=cap, start_offset_ns=offset_ns
            )
        if kind in TRACE_PATTERNS and len(parts) == 2:
            return TenantSpec.synthetic(
                name, kind, parse_size(parts[1]), start_offset_ns=offset_ns
            )
        if kind == "closed" and len(parts) in (3, 4):
            pattern = parts[1].lower()
            if pattern not in TRACE_PATTERNS:
                raise KeyError(parts[1])
            concurrency = int(parts[3]) if len(parts) == 4 else 4
            return TenantSpec.closed(
                name,
                pattern,
                parse_size(parts[2]),
                concurrency=concurrency,
                start_offset_ns=offset_ns,
            )
    except argparse.ArgumentTypeError:
        raise
    except (KeyError, ValueError):
        pass
    raise argparse.ArgumentTypeError(
        f"cannot parse tenant {text!r}; expected 'transfer:<size>[:d2p|p2d]', "
        "'memcpy:<size>', 'prim:<WORKLOAD>[:<cap>]', "
        "'uniform|bursty|skewed|phased|poisson|diurnal:<size>' or "
        "'closed:<pattern>:<size>[:<clients>]' (each optionally ':+<start-ns>')"
    )


def parse_jobs(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {text!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {jobs}")
    return jobs


def parse_shard_arg(text: str) -> Shard:
    """``I/N`` -> :class:`~repro.fleet.shard.Shard` (argparse-friendly)."""
    try:
        return parse_shard(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def parse_timeout(text: str) -> float:
    try:
        timeout = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"timeout must be a number, got {text!r}")
    if timeout <= 0:
        raise argparse.ArgumentTypeError(f"timeout must be positive, got {timeout}")
    return timeout


def parse_retries(text: str) -> int:
    try:
        retries = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"retries must be an integer, got {text!r}")
    if retries < 0:
        raise argparse.ArgumentTypeError(f"retries must be >= 0, got {retries}")
    return retries


def _resolve_config(name: str) -> SystemConfig:
    if name == "paper":
        return SystemConfig.paper_baseline()
    return SystemConfig.small_test()


def _build_session(args: argparse.Namespace) -> "Session":
    """One :class:`repro.api.Session` per CLI invocation.

    Every subcommand drives its simulations through the session's experiment
    provider, so the CLI shares the facade's config/cache/jobs wiring with
    programmatic users.  Sweep-style commands additionally get the fleet
    layer: a streaming journal under ``<results-dir>/.fleet`` (replayed by
    ``--resume``), per-task ``--task-timeout`` and bounded ``--retries``.
    """
    from repro.api import Session

    config = _resolve_config(args.config)
    builder = Session.builder().config(config).jobs(args.jobs)
    kernel = getattr(args, "kernel", None)
    if kernel is not None:
        # Session-level selection: the whole sweep's config runs under this
        # service kernel (figures have no per-spec kernel field; for sweep/
        # scenarios the per-spec override applies the same value again,
        # which is a no-op).
        builder.kernel(kernel)
    pump = getattr(args, "transfer_pump", None)
    if pump is not None:
        # Same session-level selection for the transfer pump.
        builder.pump(pump)
    fabric = getattr(args, "fabric", None)
    if fabric is not None:
        # Same session-level selection for the interconnect fabric.
        builder.fabric(fabric)
    if not args.no_cache:
        cache_dir = args.cache_dir or (args.results_dir / CACHE_DIR_NAME)
        cache = ResultCache(Path(cache_dir))
        cache.prune_stale_versions()
        builder.cache(cache)
    journal = None
    if hasattr(args, "resume"):
        # Scoped per subcommand: a fresh `repro scenarios` run must not
        # unlink the journal an interrupted `repro figures` will resume.
        journal = FleetJournal(
            args.results_dir / FLEET_DIR_NAME,
            config,
            resume=args.resume,
            scope=args.command,
        )
        journal.prune_stale_versions()
    builder.fleet(
        task_timeout_s=getattr(args, "task_timeout", None),
        retries=getattr(args, "retries", None),
        journal=journal,
    )
    session = builder.open()
    session.provider.progress = FleetProgress.auto()
    return session


def _build_provider(args: argparse.Namespace) -> ExperimentProvider:
    return _build_session(args).provider


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the PIM-MMU reproduction's figures and sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "-j",
            "--jobs",
            type=parse_jobs,
            default=1,
            help="worker processes for simulations (default: 1, serial)",
        )
        cmd.add_argument(
            "--results-dir",
            type=Path,
            default=Path("results"),
            help="directory figures are written to (default: results/)",
        )
        cmd.add_argument(
            "--cache-dir",
            type=Path,
            default=None,
            help=f"experiment cache directory (default: <results-dir>/{CACHE_DIR_NAME})",
        )
        cmd.add_argument(
            "--no-cache",
            action="store_true",
            help="do not read or write the on-disk experiment cache",
        )
        cmd.add_argument(
            "--config",
            choices=("paper", "small"),
            default="paper",
            help="system configuration: the Table I system or a small test system",
        )
        cmd.add_argument(
            "--shard",
            type=parse_shard_arg,
            default=None,
            metavar="I/N",
            help="run only shard I of N (deterministic partition; the N shards "
            "are disjoint and cover everything)",
        )
        cmd.add_argument(
            "--resume",
            action="store_true",
            help="resume an interrupted sweep: skip every spec already recorded "
            f"in <results-dir>/{FLEET_DIR_NAME}'s journal",
        )
        cmd.add_argument(
            "--task-timeout",
            type=parse_timeout,
            default=None,
            metavar="SECONDS",
            help="kill and retry any worker task running longer than this "
            "(needs -j >= 2; default: no timeout)",
        )
        cmd.add_argument(
            "--retries",
            type=parse_retries,
            default=None,
            metavar="N",
            help="re-attempts per failed/killed/hung task before the sweep "
            "fails (default: 2)",
        )

    figures = sub.add_parser(
        "figures", help="regenerate the paper's tables/figures under results/"
    )
    figures.add_argument(
        "names",
        nargs="*",
        metavar="FIGURE",
        help="figures to regenerate (default: all; see --list)",
    )
    figures.add_argument(
        "--fast",
        action="store_true",
        help="only the quick CI-smoke subset of figures",
    )
    figures.add_argument(
        "--list", action="store_true", help="list available figures and exit"
    )
    figures.add_argument(
        "--kernel",
        default=None,
        help="DRAM service kernel the figures run under: object or soa "
        "(bit-identical by construction; the committed tables regenerate "
        "byte-for-byte under either)",
    )
    figures.add_argument(
        "--transfer-pump",
        default=None,
        help="transfer pump the figures run under: object or burst "
        "(bit-identical by construction; the committed tables regenerate "
        "byte-for-byte under either)",
    )
    figures.add_argument(
        "--fabric",
        default=None,
        help="interconnect fabric the figures run under (see `repro variants`); "
        "`none` is the default direct path and regenerates the committed "
        "tables byte-for-byte",
    )
    add_common(figures)

    sweep = sub.add_parser(
        "sweep", help="run an ad-hoc grid of transfer experiments"
    )
    sweep.add_argument(
        "--design-point",
        dest="design_points",
        type=parse_design_point,
        action="append",
        help="design point (repeatable; default: all four ablation points)",
    )
    sweep.add_argument(
        "--direction",
        choices=sorted(_DIRECTION_ALIASES),
        default="both",
        help="transfer direction (default: both)",
    )
    sweep.add_argument(
        "--size",
        dest="sizes",
        type=parse_size,
        action="append",
        help="transfer size, e.g. 1MiB (repeatable; default: 1MiB)",
    )
    sweep.add_argument(
        "--contention",
        dest="contentions",
        type=parse_contention,
        action="append",
        help="contender load: none, compute:<count> or memory:<count>:<intensity> "
        "(repeatable; default: none)",
    )
    sweep.add_argument(
        "--sim-cap",
        type=parse_size,
        default=DEFAULT_SIM_CAP_BYTES,
        help="bytes simulated per experiment before extrapolation (default: 512KiB)",
    )
    sweep.add_argument(
        "--quantum-ns",
        type=float,
        default=None,
        help="override the OS scheduling quantum in nanoseconds",
    )
    sweep.add_argument(
        "--policy",
        default=None,
        help="memory-scheduler policy spec, e.g. frfcfs_cap:4 (see `repro policies`)",
    )
    sweep.add_argument(
        "--kernel",
        default=None,
        help="DRAM service kernel: object or soa (bit-identical; soa is faster)",
    )
    sweep.add_argument(
        "--transfer-pump",
        default=None,
        help="transfer pump: object or burst (bit-identical; burst "
        "vectorizes issue)",
    )
    sweep.add_argument(
        "--fabric",
        default=None,
        help="interconnect fabric: none or mesh:WxH[,hop_ns=..,credits=..] "
        "(see `repro variants`)",
    )
    add_common(sweep)

    scenarios = sub.add_parser(
        "scenarios",
        help="run multi-tenant scenarios (registered mixes or an ad-hoc --tenants mix)",
    )
    scenarios.add_argument(
        "names",
        nargs="*",
        metavar="SCENARIO",
        help="registered scenarios to run (default: all; see --list)",
    )
    scenarios.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    scenarios.add_argument(
        "--family",
        default=None,
        help="restrict to one scenario family (e.g. mix, llm); applies to "
        "NAME selection and --list alike",
    )
    scenarios.add_argument(
        "--tenants",
        dest="tenants",
        type=parse_tenant,
        action="append",
        help="ad-hoc tenant (repeatable): transfer:<size>[:d2p|p2d], memcpy:<size>, "
        "prim:<WORKLOAD>[:<cap>], uniform|bursty|skewed|phased|poisson|diurnal:<size>, "
        "or closed:<pattern>:<size>[:<clients>]; append ':+<ns>' to delay the "
        "tenant's start",
    )
    scenarios.add_argument(
        "--trace",
        dest="traces",
        type=Path,
        action="append",
        metavar="TRACE_FILE",
        help="replay a recorded trace file (JSONL/CSV) as an additional tenant "
        "(repeatable)",
    )
    scenarios.add_argument(
        "--design-point",
        type=parse_design_point,
        default=DesignPoint.BASE_DHP,
        help="design point for the ad-hoc --tenants/--trace mix only; registered "
        "scenarios carry their own (default: pim-mmu)",
    )
    scenarios.add_argument(
        "--no-isolated",
        action="store_true",
        help="skip the per-tenant isolated baseline runs (no slowdown column); "
        "applies to registered and ad-hoc scenarios alike",
    )
    scenarios.add_argument(
        "--policy",
        default=None,
        help="memory-scheduler policy spec for the ad-hoc --tenants/--trace mix "
        "(e.g. qos_priority:t0-transfer=1); registered scenarios carry their own",
    )
    scenarios.add_argument(
        "--kernel",
        default=None,
        help="DRAM service kernel for the ad-hoc --tenants/--trace mix: "
        "object or soa (bit-identical; soa is faster)",
    )
    scenarios.add_argument(
        "--transfer-pump",
        default=None,
        help="transfer pump for the ad-hoc --tenants/--trace mix: "
        "object or burst (bit-identical; burst vectorizes issue)",
    )
    scenarios.add_argument(
        "--fabric",
        default=None,
        help="interconnect fabric for the ad-hoc --tenants/--trace mix: "
        "none or mesh:WxH (registered scenarios carry their own)",
    )
    add_common(scenarios)

    sub.add_parser(
        "backends",
        help="list the registered transfer backends and design-point defaults",
    )

    sub.add_parser(
        "variants",
        help="list every registered variant axis: scheduler policies, DRAM "
        "service kernels, transfer pumps, transfer backends and fabrics",
    )

    sub.add_parser(
        "policies",
        help="list the policy/kernel/pump axes (deprecated alias; "
        "`repro variants` lists all five axes)",
    )

    bench = sub.add_parser(
        "bench",
        help="run the fixed hot-path benchmark matrix (events/sec + wall-clock)",
    )
    bench.add_argument(
        "names",
        nargs="*",
        metavar="WORKLOAD",
        help="bench workloads to run (default: the whole matrix; see --list)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list bench workloads and exit"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced matrix for CI smoke (smaller sizes, one design point)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per workload, fastest wins (default: 3, quick: 2)",
    )
    bench.add_argument(
        "--json",
        type=Path,
        default=None,
        help="trajectory file to append to (default: BENCH_hotpath.json; "
        "requires the full matrix)",
    )
    bench.add_argument(
        "--label",
        default="current",
        help="label recorded with this entry in the trajectory file",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if events/sec regressed more than 20%% vs the "
        "last committed entry of the same mode",
    )
    bench.add_argument(
        "--no-write",
        action="store_true",
        help="do not append the entry to the trajectory file",
    )
    bench.add_argument(
        "--kernel",
        default="object",
        help="DRAM service kernel the matrix runs under: object or soa "
        "(bit-identical events; only the wall clock moves)",
    )
    bench.add_argument(
        "--compare-kernels",
        action="store_true",
        help="run the matrix under BOTH kernels, print both, and fail "
        "(exit 1) unless the soa kernel's aggregate events/sec beats the "
        "object kernel's (implies --no-write)",
    )
    bench.add_argument(
        "--transfer-pump",
        default="object",
        help="transfer pump the matrix runs under: object or burst "
        "(bit-identical events; only the wall clock moves)",
    )
    bench.add_argument(
        "--compare-pumps",
        action="store_true",
        help="run the matrix under BOTH transfer pumps, print both, and "
        "fail (exit 1) unless the burst pump's aggregate events/sec beats "
        "the object pump's (implies --no-write)",
    )
    bench.add_argument(
        "--fabric",
        default="none",
        help="interconnect fabric the matrix runs under (default: none; a "
        "mesh changes the event stream, so it cannot be combined with "
        "--check or the compare gates)",
    )
    bench.add_argument(
        "--compare-fabric",
        action="store_true",
        help="run the matrix with the fabric layer explicitly selected off "
        "(fabric=none) against the default configuration in paired rounds "
        "and fail (exit 1) if the fabric=none session falls below 98%% of "
        "the default's aggregate events/sec (implies --no-write)",
    )
    bench.add_argument(
        "--baseline-kernel",
        default=None,
        help="also measure a baseline configuration with this kernel in the "
        "same invocation (paired rounds) and record the speedup ratio in "
        "the trajectory entry (default: the --kernel value)",
    )
    bench.add_argument(
        "--baseline-pump",
        default=None,
        help="also measure a baseline configuration with this transfer pump "
        "in the same invocation (paired rounds) and record the speedup "
        "ratio in the trajectory entry (default: the --transfer-pump value)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="additionally run each workload once under cProfile and write "
        "the top-25-by-cumulative tables next to the trajectory file",
    )
    bench.add_argument(
        "--shard",
        type=parse_shard_arg,
        default=None,
        metavar="I/N",
        help="run only shard I of N of the workload matrix (implies --no-write; "
        "incompatible with --check)",
    )

    clean = sub.add_parser("clean-cache", help="delete the on-disk experiment cache")
    clean.add_argument(
        "--results-dir",
        type=Path,
        default=Path("results"),
        help="directory whose cache is removed (default: results/)",
    )
    clean.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=f"cache directory to remove (default: <results-dir>/{CACHE_DIR_NAME})",
    )
    return parser


def _print_stats(provider: ExperimentProvider, elapsed_s: float) -> None:
    stats = provider.stats
    fleet = ""
    if stats.journal_hits or stats.retried:
        fleet = (
            f", journal hits: {stats.journal_hits}, retried: {stats.retried}"
        )
    print(
        f"simulations executed: {stats.executed} "
        f"(disk-cache hits: {stats.disk_hits}, memoised: {stats.memo_hits}, "
        f"extrapolated: {stats.derived}{fleet}) in {elapsed_s:.1f}s"
    )


def cmd_figures(args: argparse.Namespace) -> int:
    if args.list:
        listed = list(FIGURES.values())
        if args.fast:
            listed = [figure for figure in listed if figure.fast]
        if args.shard is not None:
            listed = shard_items(listed, args.shard, key=lambda f: f.name)
        rows = [
            {
                "figure": figure.name,
                "file": figure.filename,
                "fast": "yes" if figure.fast else "",
                "description": figure.description,
            }
            for figure in listed
        ]
        print(
            format_table(
                rows, columns=["figure", "file", "fast", "description"]
            )
        )
        return 0
    try:
        figures = select_figures(args.names, fast=args.fast)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.shard is not None:
        figures = shard_items(figures, args.shard, key=lambda f: f.name)
        if not figures:
            print(f"shard {args.shard.label}: no figures assigned; nothing to do")
            return 0
    if not figures:
        print("error: no figures selected", file=sys.stderr)
        return 2
    if args.config != "paper" and args.results_dir == Path("results"):
        # results/ holds the committed paper-config golden tables; writing
        # small-config tables under the same filenames would corrupt them.
        print(
            "error: --config small would overwrite the paper-config tables in "
            "results/; pass an explicit --results-dir",
            file=sys.stderr,
        )
        return 2
    if args.fabric not in (None, "none") and args.results_dir == Path("results"):
        # Same guard: only the direct path regenerates the committed tables
        # byte-for-byte; a mesh changes the numbers.
        print(
            "error: --fabric other than `none` would overwrite the committed "
            "direct-path tables in results/; pass an explicit --results-dir",
            file=sys.stderr,
        )
        return 2
    provider = _build_provider(args)
    started = time.perf_counter()
    try:
        paths = generate_figures(provider, figures, args.results_dir)
    except FleetError as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "completed specs were journalled; fix the failure and rerun with "
            "--resume to continue where this sweep stopped",
            file=sys.stderr,
        )
        return 1
    for path in paths:
        print(f"wrote {path}")
    _print_stats(provider, time.perf_counter() - started)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.policy is not None:
        from repro.memctrl.policies import create_policy

        create_policy(args.policy)  # fail fast on unknown specs
    if args.kernel is not None:
        from repro.memctrl.kernel import kernel_class

        kernel_class(args.kernel)  # fail fast on unknown specs
    if args.transfer_pump is not None:
        from repro.memctrl.pump import validate_pump

        validate_pump(args.transfer_pump)  # fail fast on unknown specs
    if args.fabric is not None:
        from repro.fabric import validate_fabric

        validate_fabric(args.fabric)  # fail fast on unknown specs
    sweep = Sweep(
        design_points=tuple(args.design_points or DesignPoint),
        directions=_DIRECTION_ALIASES[args.direction],
        sizes=tuple(args.sizes or (1024**2,)),
        contentions=tuple(args.contentions if args.contentions else (None,)),
        sim_cap_bytes=args.sim_cap,
        scheduling_quantum_ns=args.quantum_ns,
        memctrl_policy=args.policy,
        memctrl_kernel=args.kernel,
        transfer_pump=args.transfer_pump,
        fabric=args.fabric,
    )
    provider = _build_provider(args)
    started = time.perf_counter()
    # Repeated identical flag values collapse here (shard keys must be
    # unique; without a shard the runner would dedupe anyway).
    specs = list(dict.fromkeys(sweep.specs()))
    if args.shard is not None:
        specs = shard_items(specs, args.shard, key=repr)
        if not specs:
            print(f"shard {args.shard.label}: no specs assigned; nothing to do")
            return 0
    try:
        provider.prefetch(specs)
    except FleetError as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "the remaining rows completed and were cached/journalled; rerun "
            "(optionally with --resume) after fixing the failure",
            file=sys.stderr,
        )
        return 1
    rows = []
    for spec in specs:
        experiment = provider.run(spec)
        rows.append(
            {
                "design": spec.design_point.label,
                "direction": spec.direction.value,
                "size_MiB": spec.total_bytes / 1024**2,
                "contention": spec.contention.label if spec.contention else "none",
                "throughput_gbps": experiment.throughput_gbps,
                "latency_us": experiment.duration_ns / 1e3,
                "energy_J": experiment.energy_joules,
            }
        )
    print(
        format_table(
            rows,
            columns=[
                "design",
                "direction",
                "size_MiB",
                "contention",
                "throughput_gbps",
                "latency_us",
                "energy_J",
            ],
            title=f"Sweep: {len(rows)} transfer experiments",
            float_format="{:.3f}",
        )
    )
    _print_stats(provider, time.perf_counter() - started)
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.scenarios import (
        SCENARIOS,
        ScenarioSpec,
        generate_scenarios,
        render_scenario,
        select_scenarios,
    )
    from repro.scenarios.tenant import TenantSpec

    if args.list:
        listed = SCENARIOS.values()
        if args.family is not None:
            listed = [s for s in listed if s.family == args.family]
        rows = [
            {
                "scenario": scenario.name,
                "design": scenario.spec.design_point.label,
                "tenants": len(scenario.spec.tenants),
                "file": scenario.filename,
                "description": scenario.description,
            }
            for scenario in listed
        ]
        print(
            format_table(
                rows, columns=["scenario", "design", "tenants", "file", "description"]
            )
        )
        return 0

    adhoc_tenants = list(args.tenants or [])
    for trace_path in args.traces or []:
        adhoc_tenants.append(TenantSpec.trace_file("replay", str(trace_path)))
    if adhoc_tenants and args.names:
        print(
            "error: give registered scenario names OR an ad-hoc --tenants/--trace "
            "mix, not both",
            file=sys.stderr,
        )
        return 2

    provider = _build_provider(args)
    started = time.perf_counter()
    if adhoc_tenants:
        # Rename tenants by position so the spec (and its cache key) is a pure
        # function of the command line.
        tenants = tuple(
            dc_replace(spec, name=f"t{index}-{spec.name}")
            for index, spec in enumerate(adhoc_tenants)
        )
        if args.policy is not None:
            from repro.memctrl.policies import create_policy

            create_policy(args.policy)  # fail fast on unknown specs
        if args.kernel is not None:
            from repro.memctrl.kernel import kernel_class

            kernel_class(args.kernel)  # fail fast on unknown specs
        if args.transfer_pump is not None:
            from repro.memctrl.pump import validate_pump

            validate_pump(args.transfer_pump)  # fail fast on unknown specs
        if args.fabric is not None:
            from repro.fabric import validate_fabric

            validate_fabric(args.fabric)  # fail fast on unknown specs
        spec = ScenarioSpec(
            name="adhoc",
            design_point=args.design_point,
            tenants=tenants,
            include_isolated=not args.no_isolated,
            memctrl_policy=args.policy,
            memctrl_kernel=args.kernel,
            transfer_pump=args.transfer_pump,
            fabric=args.fabric,
        )
        try:
            provider.prefetch([spec])
            outcome = provider.run(spec)
        except FleetError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(render_scenario(outcome))
    else:
        try:
            selected = select_scenarios(args.names, family=args.family)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        if args.shard is not None:
            selected = shard_items(
                selected, args.shard, key=lambda scenario: scenario.name
            )
            if not selected:
                print(
                    f"shard {args.shard.label}: no scenarios assigned; nothing to do"
                )
                return 0
        if args.no_isolated:
            # Serving specs have no isolated-baseline phase; leave them as-is.
            def _strip(spec):
                if hasattr(spec, "include_isolated"):
                    return dc_replace(spec, include_isolated=False)
                return spec

            selected = [
                dc_replace(
                    scenario,
                    spec=_strip(scenario.spec),
                    extra_specs=tuple(_strip(s) for s in scenario.extra_specs),
                )
                for scenario in selected
            ]
        if args.config != "paper" and args.results_dir == Path("results"):
            # Same guard as `figures`: results/ holds the committed
            # paper-config golden tables.
            print(
                "error: --config small would overwrite the paper-config tables "
                "in results/; pass an explicit --results-dir",
                file=sys.stderr,
            )
            return 2
        if args.fabric not in (None, "none") and args.results_dir == Path("results"):
            print(
                "error: --fabric other than `none` would overwrite the "
                "committed direct-path tables in results/; pass an explicit "
                "--results-dir",
                file=sys.stderr,
            )
            return 2
        try:
            paths = generate_scenarios(provider, selected, args.results_dir)
        except FleetError as error:
            print(f"error: {error}", file=sys.stderr)
            print(
                "completed scenarios were journalled; rerun with --resume to "
                "continue where this sweep stopped",
                file=sys.stderr,
            )
            return 1
        for path in paths:
            print(f"wrote {path}")
    _print_stats(provider, time.perf_counter() - started)
    return 0


def _backend_table() -> str:
    from repro.api.backends import available_backends, create_backend, default_backend_name

    rows = []
    for name in available_backends():
        backend = create_backend(name)
        rows.append(
            {
                "backend": name,
                "default for": ", ".join(
                    point.label
                    for point in DesignPoint
                    if default_backend_name(point) == name
                )
                or "-",
                "description": backend.description,
            }
        )
    return format_table(
        rows,
        columns=["backend", "default for", "description"],
        title="Registered transfer backends",
    )


def cmd_backends(args: argparse.Namespace) -> int:
    print(_backend_table())
    return 0


def _policy_axis_tables() -> List[str]:
    """The policy/kernel/pump axis tables (the historical ``policies`` output)."""
    from repro.memctrl.policies import (
        available_policies,
        normalize_policy_name,
        policy_description,
    )
    from repro.sim.config import MemCtrlConfig

    default = normalize_policy_name(MemCtrlConfig().policy)
    rows = [
        {
            "policy": name,
            "default": "yes" if name == default else "",
            "description": policy_description(name),
        }
        for name in available_policies()
    ]
    tables = [
        format_table(
            rows,
            columns=["policy", "default", "description"],
            title="Registered memory-scheduler policies",
        )
    ]

    from repro.memctrl.kernel import available_kernels

    kernel_default = MemCtrlConfig().kernel
    kernel_blurbs = {
        "object": "batched per-object service kernel (PR 4)",
        "soa": "struct-of-arrays burst kernel: vectorized decode, columnar "
        "completions (bit-identical to object)",
    }
    kernel_rows = [
        {
            "kernel": name,
            "default": "yes" if name == kernel_default else "",
            "description": kernel_blurbs.get(name, ""),
        }
        for name in available_kernels()
    ]
    tables.append(
        format_table(
            kernel_rows,
            columns=["kernel", "default", "description"],
            title="Registered DRAM service kernels (--kernel)",
        )
    )

    from repro.memctrl.pump import available_pumps

    pump_default = MemCtrlConfig().transfer_pump
    pump_blurbs = {
        "object": "per-chunk request submission (PR 2)",
        "burst": "burst pump: vectorized AGU, whole in-flight windows as "
        "request bursts (bit-identical to object)",
    }
    pump_rows = [
        {
            "pump": name,
            "default": "yes" if name == pump_default else "",
            "description": pump_blurbs.get(name, ""),
        }
        for name in available_pumps()
    ]
    tables.append(
        format_table(
            pump_rows,
            columns=["pump", "default", "description"],
            title="Registered transfer pumps (--transfer-pump)",
        )
    )
    return tables


def _fabric_table() -> str:
    from repro.fabric import available_fabrics, fabric_description
    from repro.sim.config import MemCtrlConfig

    default = MemCtrlConfig().fabric
    rows = [
        {
            "fabric": name,
            "default": "yes" if name == default else "",
            "description": fabric_description(name),
        }
        for name in available_fabrics()
    ]
    return format_table(
        rows,
        columns=["fabric", "default", "description"],
        title="Registered interconnect fabrics (--fabric)",
    )


def cmd_policies(args: argparse.Namespace) -> int:
    # Deprecated alias of `repro variants`, kept with byte-identical output
    # (scripts parse it); the parser help is the only place that says so.
    print("\n\n".join(_policy_axis_tables()))
    return 0


def cmd_variants(args: argparse.Namespace) -> int:
    """All five variant axes: policies, kernels, pumps, backends, fabrics."""
    tables = _policy_axis_tables() + [_backend_table(), _fabric_table()]
    print("\n\n".join(tables))
    return 0


def _paired_bench(args, selected, variants, rounds):
    """Measure every variant with paired single-repeat rounds.

    ``variants`` maps a display label to a ``(kernel, pump, fabric)`` triple.  The
    aggregate margins between variants are a few percent, well inside the
    wall-clock swing a busy runner shows between two multi-second
    measurement phases, so measuring each variant in its own phase would
    let machine noise decide any gate built on the result.  Instead,
    single-repeat rounds alternate the variants back to back (same noise
    window for all of them), and the fastest measurement per workload
    across rounds wins -- the same fastest-wins protocol ``run_bench`` uses
    for its own repeats.
    """
    from repro.exp.bench import merge_rerun, run_bench

    def measure_round():
        return {
            label: run_bench(
                quick=args.quick, names=selected, repeats=1,
                kernel=kernel, transfer_pump=pump, fabric=fabric,
            )
            for label, (kernel, pump, fabric) in variants.items()
        }

    def fold(entries, fresh):
        return {label: merge_rerun(entries[label], fresh[label]) for label in entries}

    entries = measure_round()
    for _ in range(rounds - 1):
        entries = fold(entries, measure_round())
    return entries, measure_round, fold


def _bench_compare(args, selected, mode, started, axis) -> int:
    """``--compare-kernels`` / ``--compare-pumps``: the faster-variant gate.

    Runs the selected matrix under both values of one axis (service kernel
    or transfer pump), checks the event counts match exactly (both axes are
    bit-identical by construction, so a mismatch is a correctness bug, not
    noise) and fails unless the optimized variant's aggregate events/sec
    beats the baseline variant's.  Measurement is paired; see
    :func:`_paired_bench`.
    """
    if axis == "kernel":
        base_label, fast_label = "object", "soa"
        variants = {
            base_label: ("object", args.transfer_pump, "none"),
            fast_label: ("soa", args.transfer_pump, "none"),
        }
    else:
        base_label, fast_label = "object", "burst"
        variants = {
            base_label: (args.kernel, "object", "none"),
            fast_label: (args.kernel, "burst", "none"),
        }
    rounds = args.repeats if args.repeats is not None else (2 if args.quick else 3)
    rounds = max(rounds, 3)
    entries, measure_round, fold = _paired_bench(args, selected, variants, rounds)
    for label in variants:
        rows = [
            {"workload": name, **metrics}
            for name, metrics in entries[label]["workloads"].items()
        ]
        print(
            format_table(
                rows,
                columns=[
                    "workload",
                    "wall_s",
                    "events",
                    "events_per_sec",
                ],
                title=f"Hot-path bench ({mode} matrix, {axis}={label}, "
                f"best of {rounds} paired rounds)",
            )
        )
    base = entries[base_label]
    fast = entries[fast_label]
    mismatched = [
        name
        for name, metrics in base["workloads"].items()
        if metrics["events"] != fast["workloads"][name]["events"]
    ]
    if mismatched:
        print(
            f"{axis.upper()} MISMATCH: event counts differ between {axis}s for "
            + ", ".join(mismatched)
            + f" -- the {axis}s must be bit-identical",
            file=sys.stderr,
        )
        return 1

    def report(attempt: str) -> float:
        base_rate = base["aggregate"]["events_per_sec"]
        fast_rate = fast["aggregate"]["events_per_sec"]
        speedup = fast_rate / base_rate if base_rate > 0 else 0.0
        print(
            f"{axis} aggregate events/sec{attempt}: {base_label} "
            f"{base_rate:.0f}, {fast_label} {fast_rate:.0f} "
            f"(speedup {speedup:.3f}x); "
            f"measured in {time.perf_counter() - started:.1f}s"
        )
        return speedup

    if report("") <= 1.0:
        # Same flake-relief spirit as the --check regression gate: add two
        # more paired rounds and decide on the merged fastest-per-workload
        # numbers before failing.
        print(f"{axis} gate: adding two paired rounds (noise relief)")
        for _ in range(2):
            entries = fold(entries, measure_round())
        base = entries[base_label]
        fast = entries[fast_label]
        if report(" (after relief rounds)") <= 1.0:
            print(
                f"{axis.upper()} GATE: the {fast_label} {axis} did not beat "
                f"the {base_label} {axis}",
                file=sys.stderr,
            )
            return 1
    print(f"{axis} gate: {fast_label} beats {base_label}")
    return 0


def _bench_compare_fabric(args, selected, mode, started) -> int:
    """``--compare-fabric``: the ``fabric=none`` pass-through overhead gate.

    ``fabric="none"`` builds no fabric object -- every hot-path interposition
    is a single ``is not None`` branch -- so a session that selects ``none``
    explicitly runs the same code as the default configuration *by
    construction* (see docs/performance.md).  The gate measures both in
    paired rounds anyway: event counts must match exactly, and the
    explicit-none aggregate events/sec must stay within 2% of the default's.
    That bounds the interposition overhead empirically instead of taking the
    by-construction argument on faith.
    """
    base_label, none_label = "default", "fabric-none"
    variants = {
        base_label: (args.kernel, args.transfer_pump, "none"),
        none_label: (args.kernel, args.transfer_pump, "none"),
    }
    rounds = args.repeats if args.repeats is not None else (2 if args.quick else 3)
    rounds = max(rounds, 3)
    entries, measure_round, fold = _paired_bench(args, selected, variants, rounds)
    for label in variants:
        rows = [
            {"workload": name, **metrics}
            for name, metrics in entries[label]["workloads"].items()
        ]
        print(
            format_table(
                rows,
                columns=["workload", "wall_s", "events", "events_per_sec"],
                title=f"Hot-path bench ({mode} matrix, {label}, "
                f"best of {rounds} paired rounds)",
            )
        )
    base, explicit = entries[base_label], entries[none_label]
    mismatched = [
        name
        for name, metrics in base["workloads"].items()
        if metrics["events"] != explicit["workloads"][name]["events"]
    ]
    if mismatched:
        print(
            "FABRIC MISMATCH: event counts differ between the default and "
            "fabric=none configurations for " + ", ".join(mismatched)
            + " -- fabric=none must be bit-identical to the direct path",
            file=sys.stderr,
        )
        return 1

    def report(attempt: str) -> float:
        base_rate = base["aggregate"]["events_per_sec"]
        none_rate = explicit["aggregate"]["events_per_sec"]
        ratio = none_rate / base_rate if base_rate > 0 else 0.0
        print(
            f"fabric aggregate events/sec{attempt}: {base_label} "
            f"{base_rate:.0f}, {none_label} {none_rate:.0f} "
            f"(ratio {ratio:.3f}); "
            f"measured in {time.perf_counter() - started:.1f}s"
        )
        return ratio

    if report("") < 0.98:
        print("fabric gate: adding two paired rounds (noise relief)")
        for _ in range(2):
            entries = fold(entries, measure_round())
        base, explicit = entries[base_label], entries[none_label]
        if report(" (after relief rounds)") < 0.98:
            print(
                "FABRIC GATE: the fabric=none session fell below 98% of the "
                "default configuration's aggregate events/sec",
                file=sys.stderr,
            )
            return 1
    print("fabric gate: fabric=none is within 2% of the default path")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.exp.bench import (
        BENCH_FILENAME,
        BENCH_WORKLOADS,
        append_entry,
        check_regression,
        load_trajectory,
        merge_rerun,
        profile_bench,
        regressing_workloads,
        run_bench,
        with_baseline_ratio,
    )

    if args.list:
        names = list(BENCH_WORKLOADS)
        if args.shard is not None:
            names = shard_items(names, args.shard, key=str)
        rows = [{"workload": name} for name in names]
        print(format_table(rows, columns=["workload"], title="Bench workloads"))
        return 0
    if args.shard is not None and args.check:
        print(
            "error: --check compares the full matrix aggregate; it cannot run "
            "on a shard",
            file=sys.stderr,
        )
        return 2
    compares = [args.compare_kernels, args.compare_pumps, args.compare_fabric]
    if any(compares) and args.check:
        print(
            "error: --compare-kernels/--compare-pumps/--compare-fabric are "
            "their own gates; do not combine them with --check",
            file=sys.stderr,
        )
        return 2
    if sum(compares) > 1:
        print(
            "error: compare one axis at a time (--compare-kernels holds the "
            "pump fixed at --transfer-pump; --compare-pumps holds the kernel "
            "fixed at --kernel; --compare-fabric holds both fixed)",
            file=sys.stderr,
        )
        return 2
    if args.fabric != "none" and (any(compares) or args.check):
        # A mesh changes the event stream, so neither the committed-trajectory
        # regression gate nor the bit-identical compare gates apply under it.
        print(
            "error: --fabric other than `none` cannot be combined with "
            "--check or the compare gates",
            file=sys.stderr,
        )
        return 2
    selected = args.names or None
    if args.shard is not None:
        selected = shard_items(
            list(dict.fromkeys(selected or BENCH_WORKLOADS)), args.shard, key=str
        )
        if not selected:
            print(f"shard {args.shard.label}: no workloads assigned; nothing to do")
            return 0
    started = time.perf_counter()
    mode = "quick" if args.quick else "full"
    path = args.json if args.json is not None else Path(BENCH_FILENAME)
    if args.profile:
        report = profile_bench(
            quick=args.quick, names=selected, kernel=args.kernel,
            transfer_pump=args.transfer_pump, fabric=args.fabric,
        )
        profile_name = "BENCH_profile-quick.txt" if args.quick else "BENCH_profile.txt"
        profile_path = path.parent / profile_name
        profile_path.write_text(report)
        print(f"wrote {profile_path}")
    if args.compare_kernels:
        return _bench_compare(args, selected, mode, started, "kernel")
    if args.compare_pumps:
        return _bench_compare(args, selected, mode, started, "pump")
    if args.compare_fabric:
        return _bench_compare_fabric(args, selected, mode, started)
    baseline_entry = None
    if args.baseline_kernel is not None or args.baseline_pump is not None:
        # Same-invocation baseline: the entry and its baseline configuration
        # are measured in paired rounds so the recorded ratio reflects code,
        # not machine drift between two separate bench runs.
        baseline = (
            args.baseline_kernel or args.kernel,
            args.baseline_pump or args.transfer_pump,
            args.fabric,
        )
        variants = {
            "entry": (args.kernel, args.transfer_pump, args.fabric),
            "baseline": baseline,
        }
        rounds = args.repeats if args.repeats is not None else (2 if args.quick else 3)
        rounds = max(rounds, 3)
        entries, _, _ = _paired_bench(args, selected, variants, rounds)
        entry, baseline_entry = entries["entry"], entries["baseline"]
        mismatched = [
            name
            for name, metrics in entry["workloads"].items()
            if metrics["events"] != baseline_entry["workloads"][name]["events"]
        ]
        if mismatched:
            print(
                "BASELINE MISMATCH: event counts differ from the baseline "
                "configuration for " + ", ".join(mismatched)
                + " -- kernels and pumps must be bit-identical",
                file=sys.stderr,
            )
            return 1
        # The paired fold reports best-of-rounds; "reran" is an artifact of
        # reusing merge_rerun for the fold, not a flake-relief record.
        entry.pop("reran", None)
        entry["repeats"] = rounds
        entry = with_baseline_ratio(entry, baseline_entry)
        ratio = entry["baseline"]["ratio"]
        print(
            f"baseline (kernel={baseline[0]}, pump={baseline[1]}): "
            f"{baseline_entry['aggregate']['events_per_sec']:.0f} events/sec; "
            f"entry ratio {ratio:.3f}x" if ratio is not None else
            "baseline rate was zero; no ratio recorded"
        )
    else:
        entry = run_bench(
            quick=args.quick, names=selected, repeats=args.repeats,
            kernel=args.kernel, transfer_pump=args.transfer_pump,
            fabric=args.fabric,
        )
    if args.check:
        if args.names:
            print(
                "error: --check compares the full matrix aggregate; do not "
                "combine it with a workload selection",
                file=sys.stderr,
            )
            return 2
        document = load_trajectory(path)
        failure = check_regression(document, entry)
        if failure:
            # Flake relief: before failing the gate, rerun only the
            # regressing workload(s) once -- a noisy CI neighbour slows one
            # workload far more often than a real regression slows them all.
            suspects = regressing_workloads(document, entry)
            if suspects:
                print(
                    "perf check: gate tripped; re-running only "
                    f"{', '.join(suspects)} once to rule out runner noise",
                    file=sys.stderr,
                )
                rerun = run_bench(
                    quick=args.quick, names=suspects, repeats=1,
                    kernel=args.kernel, transfer_pump=args.transfer_pump,
                )
                entry = merge_rerun(entry, rerun)
                failure = check_regression(document, entry)
    rows = [
        {"workload": name, **metrics} for name, metrics in entry["workloads"].items()
    ]
    print(
        format_table(
            rows,
            columns=[
                "workload",
                "wall_s",
                "events",
                "events_per_sec",
                "requests_per_sec",
                "wall_spread_pct",
            ],
            title=f"Hot-path bench ({mode} matrix, best of {entry['repeats']})",
        )
    )
    aggregate = entry["aggregate"]
    print(
        f"aggregate: {aggregate['events']} events in {aggregate['wall_s']}s "
        f"({aggregate['events_per_sec']:.0f} events/sec); "
        f"measured in {time.perf_counter() - started:.1f}s"
    )
    if args.check:
        if failure:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("perf check: within tolerance of the committed baseline")
    if not args.no_write:
        if args.names or args.shard is not None:
            print("note: partial matrix run; not writing the trajectory file")
        else:
            append_entry(path, args.label, entry)
            print(f"appended entry {args.label!r} to {path}")
    return 0


def _orphaned_pycache_dirs(root: Path) -> List[Path]:
    """``__pycache__`` dirs whose package directory no longer has sources.

    Deleting or renaming a package leaves its ``__pycache__`` behind (git
    does not track it), and the stale directory keeps the dead package
    importable on some setups.  A ``__pycache__`` is orphaned when its
    parent contains no ``.py`` files at all.
    """
    orphans = []
    for pycache in sorted(root.rglob("__pycache__")):
        if not any(pycache.parent.glob("*.py")):
            orphans.append(pycache)
    return orphans


def cmd_clean_cache(args: argparse.Namespace) -> int:
    import shutil

    cache_dir = args.cache_dir or (args.results_dir / CACHE_DIR_NAME)
    cache = ResultCache(Path(cache_dir))
    if cache.clear():
        print(f"removed {cache_dir}")
    else:
        print(f"nothing to remove at {cache_dir}")
    fleet_dir = args.results_dir / FLEET_DIR_NAME
    if fleet_dir.exists():
        shutil.rmtree(fleet_dir, ignore_errors=True)
        print(f"removed {fleet_dir}")
    import repro

    package_root = Path(repro.__file__).resolve().parent
    for pycache in _orphaned_pycache_dirs(package_root):
        shutil.rmtree(pycache, ignore_errors=True)
        parent = pycache.parent
        try:
            parent.rmdir()  # drop the husk of the dead package if now empty
        except OSError:
            pass
        print(f"removed orphaned {pycache}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "figures": cmd_figures,
        "sweep": cmd_sweep,
        "scenarios": cmd_scenarios,
        "backends": cmd_backends,
        "policies": cmd_policies,
        "variants": cmd_variants,
        "bench": cmd_bench,
        "clean-cache": cmd_clean_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
