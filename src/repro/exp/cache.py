"""On-disk result cache for experiment outcomes.

Results live under ``results/.cache/<code-version>/<key>.pkl``.  The key is a
stable SHA-256 over ``(spec kind, SystemConfig.stable_key(), repr(spec))``;
the ``<code-version>`` directory is a SHA-256 over every ``*.py`` file of the
``repro`` package, so any code change transparently invalidates every cached
result (stale entries from older versions are swept out lazily).

The cache stores pickles of whatever the spec's ``run`` returned, wrapped in
a small header carrying the human-readable key material for debuggability.
A corrupt or unreadable entry is treated as a miss and removed.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import shutil
from functools import lru_cache
from pathlib import Path
from typing import Optional

from repro.sim.config import SystemConfig

from repro.exp.spec import ExperimentSpec

#: Sub-directory of ``results/`` that holds the cache.
CACHE_DIR_NAME = ".cache"

#: Sentinel returned by :meth:`ResultCache.get` when a key is absent.
MISS = object()

#: Per-process counter making concurrent temp-file names unique (pytest and
#: the CLI may write the same shared cache at once).
_TMP_COUNTER = itertools.count()


@lru_cache(maxsize=1)
def code_version() -> str:
    """A stable hash over the source of the ``repro`` package.

    Hashes the relative path and content of every ``*.py`` file under
    ``src/repro`` (in sorted order), so the cache is invalidated whenever any
    model, workload, or orchestration code changes.
    """
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def spec_key(config: SystemConfig, spec: ExperimentSpec) -> str:
    """Stable cache key for one ``(config, spec)`` pair."""
    material = "\n".join((spec.KIND, config.stable_key(), repr(spec)))
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """Pickle-per-entry cache rooted at ``results/.cache`` by default."""

    def __init__(self, root: Path, version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else code_version()

    @property
    def directory(self) -> Path:
        """The per-code-version directory entries are stored in."""
        return self.root / self.version

    def path_for(self, config: SystemConfig, spec: ExperimentSpec) -> Path:
        return self.directory / f"{spec.KIND}-{spec_key(config, spec)}.pkl"

    def get(self, config: SystemConfig, spec: ExperimentSpec):
        """Return the cached outcome, or :data:`MISS` when absent/corrupt."""
        path = self.path_for(config, spec)
        if not path.exists():
            return MISS
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
            return payload["value"]
        except Exception:
            path.unlink(missing_ok=True)
            return MISS

    def put(self, config: SystemConfig, spec: ExperimentSpec, value) -> Path:
        """Store ``value`` atomically (write to a temp file, then rename)."""
        path = self.path_for(config, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "kind": spec.KIND,
            "spec": repr(spec),
            "config": config.stable_key(),
            "value": value,
        }
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{next(_TMP_COUNTER)}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def prune_stale_versions(self) -> int:
        """Remove entry directories left behind by older code versions."""
        removed = 0
        if not self.root.exists():
            return removed
        for child in self.root.iterdir():
            if child.is_dir() and child.name != self.version:
                shutil.rmtree(child, ignore_errors=True)
                removed += 1
        return removed

    def clear(self) -> bool:
        """Delete the whole cache tree.  Returns whether anything existed."""
        existed = self.root.exists()
        shutil.rmtree(self.root, ignore_errors=True)
        return existed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*.pkl"))


__all__ = ["CACHE_DIR_NAME", "MISS", "ResultCache", "code_version", "spec_key"]
