"""Experiment orchestration: parallel fan-out, memoisation, disk caching.

:class:`ParallelRunner` executes a batch of specs by delegating to the
fault-tolerant :class:`~repro.fleet.runner.FleetRunner` -- a work-stealing
task queue over worker processes with per-task timeout, bounded retry and an
optional resume journal (``jobs == 1`` stays a serial in-process loop).
Workers build their own :class:`~repro.sim.engine.SimulationEngine`; the
engine is deterministic, so parallel, serial, killed-and-retried and resumed
runs all produce identical results.

:class:`ExperimentProvider` is the one orchestration path shared by the
pytest benchmark suite, the ``python -m repro`` CLI, and the sharded CI
fleet workers.  It layers, in order:

1. an in-memory memo (one entry per spec per provider),
2. the streaming :class:`~repro.fleet.journal.FleetJournal` (optional; what
   ``--resume`` replays),
3. the on-disk :class:`~repro.exp.cache.ResultCache` (optional),
4. arithmetic derivation: oversized :class:`TransferSpec` requests are served
   by extrapolating the cached steady-state *window* experiment instead of
   re-simulating,
5. actual simulation, serial or fanned out through the fleet runner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import SystemConfig
from repro.transfer.descriptor import TransferDirection
from repro.sim.config import DesignPoint
from repro.workloads.microbench import TransferExperiment, extrapolate_experiment

from repro.exp.cache import MISS, ResultCache
from repro.exp.spec import DEFAULT_SIM_CAP_BYTES, ExperimentSpec, TransferSpec
from repro.fleet.runner import DEFAULT_RETRIES, FleetError, FleetPolicy, FleetRunner


def _execute_spec(payload: Tuple[SystemConfig, ExperimentSpec]):
    """Run one spec on a private simulation engine (kept for compatibility)."""
    config, spec = payload
    return spec.run(config)


def default_jobs() -> int:
    """A sensible default worker count (leave one core for the parent)."""
    return max(1, (os.cpu_count() or 2) - 1)


class ParallelRunner:
    """Executes batches of experiment specs, optionally across processes.

    A thin façade over :class:`~repro.fleet.runner.FleetRunner` keeping the
    historical constructor/`run` signature; the fleet knobs (per-task
    timeout, bounded retry, resume journal, progress reporting) are optional
    and default to the classic fire-and-collect behaviour.
    """

    def __init__(
        self,
        jobs: int = 1,
        task_timeout_s: Optional[float] = None,
        retries: int = DEFAULT_RETRIES,
        journal=None,
        progress=None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.policy = FleetPolicy(task_timeout_s=task_timeout_s, retries=retries)
        self.journal = journal
        self.progress = progress
        self.fleet_stats = None  # the last run's FleetStats

    def run(
        self, config: SystemConfig, specs: Sequence[ExperimentSpec]
    ) -> Dict[ExperimentSpec, object]:
        """Run every unique spec and return outcomes keyed by spec.

        Duplicate specs collapse to one execution.  Results are keyed (not
        positional) so callers can request in any order.  Raises
        :class:`~repro.fleet.runner.FleetError` -- after the rest of the
        batch completed -- if any spec exhausts its retry budget.
        """
        runner = FleetRunner(
            jobs=self.jobs,
            policy=self.policy,
            journal=self.journal,
            progress=self.progress,
        )
        self.fleet_stats = runner.stats
        return runner.run(config, specs)


@dataclass
class ProviderStats:
    """Where each requested experiment outcome came from."""

    executed: int = 0  # actual simulations run (serial or in a worker)
    disk_hits: int = 0  # served from results/.cache
    memo_hits: int = 0  # served from the in-memory memo
    derived: int = 0  # extrapolated arithmetically from a cached window
    journal_hits: int = 0  # served from a resumed fleet journal
    retried: int = 0  # failed attempts the fleet requeued and re-ran

    def as_dict(self) -> Dict[str, int]:
        return {
            "executed": self.executed,
            "disk_hits": self.disk_hits,
            "memo_hits": self.memo_hits,
            "derived": self.derived,
            "journal_hits": self.journal_hits,
            "retried": self.retried,
        }


@dataclass
class ExperimentProvider:
    """Memoising, cache-backed, fleet-capable experiment source."""

    config: SystemConfig
    cache: Optional[ResultCache] = None
    jobs: int = 1
    #: Fleet knobs: per-task timeout, bounded retry, resume journal, progress.
    task_timeout_s: Optional[float] = None
    retries: int = DEFAULT_RETRIES
    journal: Optional[object] = None
    progress: Optional[object] = None
    stats: ProviderStats = field(default_factory=ProviderStats)

    def __post_init__(self) -> None:
        self._memo: Dict[ExperimentSpec, object] = {}

    # -- core orchestration -------------------------------------------------

    def _canonical(self, spec: ExperimentSpec) -> ExperimentSpec:
        """The spec whose outcome is actually simulated and cached."""
        if isinstance(spec, TransferSpec):
            return spec.window(self.config)
        return spec

    def _derive(self, spec: TransferSpec, window_outcome: TransferExperiment):
        derived = extrapolate_experiment(window_outcome, spec.total_bytes, self.config)
        self._memo[spec] = derived
        self.stats.derived += 1
        return derived

    def run(self, spec: ExperimentSpec):
        """Return the outcome for ``spec``, simulating only on a cold miss."""
        if spec in self._memo:
            self.stats.memo_hits += 1
            return self._memo[spec]
        canonical = self._canonical(spec)
        if canonical is not spec and canonical != spec:
            return self._derive(spec, self.run(canonical))
        value = MISS
        from_journal = False
        if self.journal is not None:
            value = self.journal.get(self.config, canonical)
            if value is not MISS:
                self.stats.journal_hits += 1
                from_journal = True
        if value is MISS and self.cache is not None:
            value = self.cache.get(self.config, canonical)
            if value is not MISS:
                self.stats.disk_hits += 1
        if value is MISS:
            value = canonical.run(self.config)
            self.stats.executed += 1
            if self.journal is not None:
                self.journal.record_done(self.config, canonical, value)
            if self.cache is not None:
                self.cache.put(self.config, canonical, value)
        elif from_journal and self.cache is not None:
            # Warm the durable cache from the resumed journal so later runs
            # need neither.
            self.cache.put(self.config, canonical, value)
        self._memo[canonical] = value
        return value

    def _make_runner(self) -> ParallelRunner:
        return ParallelRunner(
            jobs=self.jobs,
            task_timeout_s=self.task_timeout_s,
            retries=self.retries,
            journal=self.journal,
            progress=self.progress,
        )

    def _absorb(self, outcomes: Dict[ExperimentSpec, object]) -> None:
        for spec, value in outcomes.items():
            self._memo[spec] = value
            if self.cache is not None:
                self.cache.put(self.config, spec, value)

    def prefetch(self, specs: Iterable[ExperimentSpec]) -> int:
        """Ensure every spec's canonical outcome is available, in parallel.

        Deduplicates, canonicalises transfers to their simulated windows,
        drops everything already memoised or disk-cached, and fans the rest
        out over the fleet runner with this provider's ``jobs`` and fleet
        policy (timeout/retry/journal).  Returns the number of simulations
        actually executed.  If any spec exhausts its retry budget, the rest
        of the batch still completes (and is cached/journalled) before
        :class:`~repro.fleet.runner.FleetError` propagates.
        """
        todo: List[ExperimentSpec] = []
        for spec in dict.fromkeys(self._canonical(s) for s in specs):
            if spec in self._memo or spec in todo:
                continue
            if self.cache is not None:
                value = self.cache.get(self.config, spec)
                if value is not MISS:
                    self._memo[spec] = value
                    self.stats.disk_hits += 1
                    continue
            todo.append(spec)
        if not todo:
            return 0
        runner = self._make_runner()
        try:
            outcomes = runner.run(self.config, todo)
        except FleetError as error:
            # Keep everything that *did* finish: the journal already has it,
            # and the disk cache should too, so a fixed rerun is incremental.
            self._absorb(error.outcomes)
            self._merge_fleet_stats(runner)
            raise
        self._absorb(outcomes)
        executed = self._merge_fleet_stats(runner)
        return executed

    def _merge_fleet_stats(self, runner: ParallelRunner) -> int:
        fleet = runner.fleet_stats
        if fleet is None:
            return 0
        self.stats.executed += fleet.executed
        self.stats.journal_hits += fleet.journal_hits
        self.stats.retried += fleet.retried
        return fleet.executed

    # -- convenience API (the benchmark suite's historical signature) -------

    def get(
        self,
        design_point: DesignPoint,
        direction: TransferDirection,
        total_bytes: int,
        sim_cap_bytes: int = DEFAULT_SIM_CAP_BYTES,
    ) -> TransferExperiment:
        """Fetch one plain transfer experiment (no contention, default OS)."""
        return self.run(
            TransferSpec(
                design_point=design_point,
                direction=direction,
                total_bytes=total_bytes,
                sim_cap_bytes=sim_cap_bytes,
            )
        )


__all__ = [
    "ExperimentProvider",
    "ParallelRunner",
    "ProviderStats",
    "default_jobs",
]
