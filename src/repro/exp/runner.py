"""Experiment orchestration: parallel fan-out, memoisation, disk caching.

:class:`ParallelRunner` executes a batch of specs, fanning out over a
``ProcessPoolExecutor`` when ``jobs > 1`` (with a serial in-process fallback
for ``jobs == 1``).  Workers receive ``(config, spec)`` pairs and build their
own :class:`~repro.sim.engine.SimulationEngine`; the engine is deterministic,
so parallel and serial runs produce identical results.

:class:`ExperimentProvider` is the one orchestration path shared by the
pytest benchmark suite, the ``python -m repro`` CLI, and any future sharded
worker.  It layers, in order:

1. an in-memory memo (one entry per spec per provider),
2. the on-disk :class:`~repro.exp.cache.ResultCache` (optional),
3. arithmetic derivation: oversized :class:`TransferSpec` requests are served
   by extrapolating the cached steady-state *window* experiment instead of
   re-simulating,
4. actual simulation, serial or fanned out through a runner.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import SystemConfig
from repro.transfer.descriptor import TransferDirection
from repro.sim.config import DesignPoint
from repro.workloads.microbench import TransferExperiment, extrapolate_experiment

from repro.exp.cache import MISS, ResultCache
from repro.exp.spec import DEFAULT_SIM_CAP_BYTES, ExperimentSpec, TransferSpec


def _execute_spec(payload: Tuple[SystemConfig, ExperimentSpec]):
    """Worker entry point: run one spec on a private simulation engine."""
    config, spec = payload
    return spec.run(config)


def default_jobs() -> int:
    """A sensible default worker count (leave one core for the parent)."""
    return max(1, (os.cpu_count() or 2) - 1)


class ParallelRunner:
    """Executes batches of experiment specs, optionally across processes."""

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs

    def run(
        self, config: SystemConfig, specs: Sequence[ExperimentSpec]
    ) -> Dict[ExperimentSpec, object]:
        """Run every unique spec and return outcomes keyed by spec.

        Duplicate specs collapse to one execution.  Results are keyed (not
        positional) so callers can request in any order.
        """
        unique: List[ExperimentSpec] = list(dict.fromkeys(specs))
        if not unique:
            return {}
        if self.jobs == 1 or len(unique) == 1:
            return {spec: spec.run(config) for spec in unique}
        workers = min(self.jobs, len(unique))
        payloads = [(config, spec) for spec in unique]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_execute_spec, payloads))
        return dict(zip(unique, outcomes))


@dataclass
class ProviderStats:
    """Where each requested experiment outcome came from."""

    executed: int = 0  # actual simulations run (serial or in a worker)
    disk_hits: int = 0  # served from results/.cache
    memo_hits: int = 0  # served from the in-memory memo
    derived: int = 0  # extrapolated arithmetically from a cached window

    def as_dict(self) -> Dict[str, int]:
        return {
            "executed": self.executed,
            "disk_hits": self.disk_hits,
            "memo_hits": self.memo_hits,
            "derived": self.derived,
        }


@dataclass
class ExperimentProvider:
    """Memoising, cache-backed, parallel-capable experiment source."""

    config: SystemConfig
    cache: Optional[ResultCache] = None
    jobs: int = 1
    stats: ProviderStats = field(default_factory=ProviderStats)

    def __post_init__(self) -> None:
        self._memo: Dict[ExperimentSpec, object] = {}

    # -- core orchestration -------------------------------------------------

    def _canonical(self, spec: ExperimentSpec) -> ExperimentSpec:
        """The spec whose outcome is actually simulated and cached."""
        if isinstance(spec, TransferSpec):
            return spec.window(self.config)
        return spec

    def _derive(self, spec: TransferSpec, window_outcome: TransferExperiment):
        derived = extrapolate_experiment(window_outcome, spec.total_bytes, self.config)
        self._memo[spec] = derived
        self.stats.derived += 1
        return derived

    def run(self, spec: ExperimentSpec):
        """Return the outcome for ``spec``, simulating only on a cold miss."""
        if spec in self._memo:
            self.stats.memo_hits += 1
            return self._memo[spec]
        canonical = self._canonical(spec)
        if canonical is not spec and canonical != spec:
            return self._derive(spec, self.run(canonical))
        value = MISS
        if self.cache is not None:
            value = self.cache.get(self.config, canonical)
            if value is not MISS:
                self.stats.disk_hits += 1
        if value is MISS:
            value = canonical.run(self.config)
            self.stats.executed += 1
            if self.cache is not None:
                self.cache.put(self.config, canonical, value)
        self._memo[canonical] = value
        return value

    def prefetch(self, specs: Iterable[ExperimentSpec]) -> int:
        """Ensure every spec's canonical outcome is available, in parallel.

        Deduplicates, canonicalises transfers to their simulated windows,
        drops everything already memoised or disk-cached, and fans the rest
        out over :class:`ParallelRunner` with this provider's ``jobs``.
        Returns the number of simulations actually executed.
        """
        todo: List[ExperimentSpec] = []
        for spec in dict.fromkeys(self._canonical(s) for s in specs):
            if spec in self._memo or spec in todo:
                continue
            if self.cache is not None:
                value = self.cache.get(self.config, spec)
                if value is not MISS:
                    self._memo[spec] = value
                    self.stats.disk_hits += 1
                    continue
            todo.append(spec)
        if not todo:
            return 0
        runner = ParallelRunner(jobs=self.jobs)
        outcomes = runner.run(self.config, todo)
        self.stats.executed += len(outcomes)
        for spec, value in outcomes.items():
            self._memo[spec] = value
            if self.cache is not None:
                self.cache.put(self.config, spec, value)
        return len(outcomes)

    # -- convenience API (the benchmark suite's historical signature) -------

    def get(
        self,
        design_point: DesignPoint,
        direction: TransferDirection,
        total_bytes: int,
        sim_cap_bytes: int = DEFAULT_SIM_CAP_BYTES,
    ) -> TransferExperiment:
        """Fetch one plain transfer experiment (no contention, default OS)."""
        return self.run(
            TransferSpec(
                design_point=design_point,
                direction=direction,
                total_bytes=total_bytes,
                sim_cap_bytes=sim_cap_bytes,
            )
        )


__all__ = [
    "ExperimentProvider",
    "ParallelRunner",
    "ProviderStats",
    "default_jobs",
]
