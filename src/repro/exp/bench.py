"""Hot-path performance benchmark (``repro bench``).

Runs a **fixed workload matrix** over the simulation core and reports, per
workload, the wall-clock time, the number of simulation events fired and the
events/sec rate.  The matrix is deliberately frozen so numbers are comparable
across commits: the committed ``BENCH_hotpath.json`` accumulates one entry per
measured revision and gives the repo a performance trajectory (see
``docs/performance.md`` for how to read it).

Workloads
---------
* ``headline-sweep`` -- the headline transfer sweep: all four design points x
  both directions at 1 MiB (512 KiB simulated window) on the Table I system.
  This is the number the ROADMAP's "as fast as the hardware allows" goal is
  tracked by.
* ``scenario-mix`` -- a two-tenant memcpy-vs-transfer scenario (isolated
  baselines included), exercising the composer, the memcpy engine and the DCE
  on one clock.
* ``replay-bursty`` -- open-loop replay of a synthetic bursty trace,
  exercising the replayer scheduling path and controller backpressure.
* ``deep-queue`` -- a single controller with a 4096-deep read queue fed with
  row-conflicting traffic: a regression guard for the scheduler-pick path
  (O(n) scans here made deep queues quadratic before PR 4).

``--quick`` runs a reduced matrix (one design point, smaller sizes) suitable
for CI smoke, and ``--check`` compares against the committed baseline.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.sim.config import DesignPoint, MemCtrlConfig, SystemConfig
from repro.transfer.descriptor import TransferDirection

KIB = 1024
MIB = 1024 * 1024

#: File name of the committed benchmark trajectory.
BENCH_FILENAME = "BENCH_hotpath.json"

#: Schema version of the JSON document.
BENCH_SCHEMA = 1

#: CI gate: fail when aggregate events/sec regresses by more than this factor
#: relative to the committed baseline entry.
REGRESSION_TOLERANCE = 0.20


@dataclass
class BenchResult:
    """Outcome of one benchmark workload."""

    name: str
    wall_s: float
    events: int
    requests: int

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def requests_per_sec(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "requests": self.requests,
            "requests_per_sec": round(self.requests_per_sec, 1),
        }


def _with_kernel(
    config: SystemConfig, kernel: str, pump: str = "object", fabric: str = "none"
) -> SystemConfig:
    """``config`` with the service kernel, transfer pump and fabric selected."""
    if (
        kernel == config.memctrl.kernel
        and pump == config.memctrl.transfer_pump
        and fabric == config.memctrl.fabric
    ):
        return config
    from dataclasses import replace

    return replace(
        config,
        memctrl=replace(
            config.memctrl, kernel=kernel, transfer_pump=pump, fabric=fabric
        ),
    )


def machine_fingerprint() -> Dict[str, object]:
    """Identify the machine a bench entry was measured on.

    Wall-clock baselines are machine-specific; the fingerprint travels with
    every trajectory entry so cross-entry comparisons can tell "code got
    slower" apart from "different machine measured this".
    """
    import platform

    cpu = platform.processor() or platform.machine()
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "cpu": cpu,
        "cores": os.cpu_count(),
        "python": platform.python_version(),
    }


def _served_requests(stats) -> int:
    return int(
        sum(
            counter.value
            for name, counter in stats.counters.items()
            if name.endswith("/served")
        )
    )


def _bench_transfer_sweep(
    quick: bool, kernel: str = "object", pump: str = "object", fabric: str = "none"
) -> BenchResult:
    from repro.system import build_system
    from repro.workloads.microbench import run_transfer_experiment_on

    config = _with_kernel(SystemConfig.paper_baseline(), kernel, pump, fabric)
    if quick:
        cases = [(DesignPoint.BASE_DHP, TransferDirection.DRAM_TO_PIM)]
        total_bytes, cap = 256 * KIB, 256 * KIB
    else:
        cases = [
            (point, direction)
            for point in DesignPoint
            for direction in TransferDirection
        ]
        total_bytes, cap = 1 * MIB, 512 * KIB
    events = 0
    requests = 0
    wall = 0.0
    for point, direction in cases:
        system = build_system(config=config, design_point=point)
        started = time.perf_counter()
        run_transfer_experiment_on(
            system, direction, total_bytes, sim_cap_bytes=cap
        )
        wall += time.perf_counter() - started
        events += system.engine.events_fired
        requests += _served_requests(system.stats)
    return BenchResult("headline-sweep", wall, events, requests)


def _bench_scenario_mix(
    quick: bool, kernel: str = "object", pump: str = "object", fabric: str = "none"
) -> BenchResult:
    from repro.scenarios.tenant import TenantSpec, run_scenario
    from repro.system import build_system

    config = _with_kernel(SystemConfig.paper_baseline(), kernel, pump, fabric)
    size = 128 * KIB if quick else 256 * KIB
    tenants = (
        TenantSpec.memcpy("memcpy", total_bytes=size),
        TenantSpec.transfer("xfer", total_bytes=size),
    )
    # One fresh system per constituent run, exactly like the default path,
    # but with the engines kept so events can be summed afterwards.
    instrumented: List = []

    def factory():
        system = build_system(config=config, design_point=DesignPoint.BASE_DHP)
        instrumented.append(system)
        return system

    started = time.perf_counter()
    run_scenario(
        config,
        DesignPoint.BASE_DHP,
        tenants,
        name="bench-mix",
        include_isolated=not quick,
        system_factory=factory,
    )
    wall = time.perf_counter() - started
    events = sum(system.engine.events_fired for system in instrumented)
    requests = sum(_served_requests(system.stats) for system in instrumented)
    return BenchResult("scenario-mix", wall, events, requests)


def _bench_replay_bursty(
    quick: bool, kernel: str = "object", pump: str = "object", fabric: str = "none"
) -> BenchResult:
    from repro.scenarios.trace import TraceReplayer, synthesize_trace
    from repro.system import build_system

    config = _with_kernel(SystemConfig.paper_baseline(), kernel, pump, fabric)
    size = 128 * KIB if quick else 512 * KIB
    trace = synthesize_trace("bursty", total_bytes=size, mean_gap_ns=4.0)
    system = build_system(config=config, design_point=DesignPoint.BASE_DHP)
    replayer = TraceReplayer(system, trace)
    started = time.perf_counter()
    replayer.execute()
    wall = time.perf_counter() - started
    return BenchResult(
        "replay-bursty", wall, system.engine.events_fired,
        _served_requests(system.stats),
    )


def _bench_deep_queue(
    quick: bool, kernel: str = "object", pump: str = "object", fabric: str = "none"
) -> BenchResult:
    # ``fabric`` is accepted for matrix uniformity but has nothing to
    # interpose on here: this workload drives a bare ChannelController, and
    # the fabric sits above the controllers (in PimSystem).
    from repro.dram.channel import DdrChannel
    from repro.mapping.locality import locality_centric_mapping
    from repro.memctrl.controller import ChannelController
    from repro.memctrl.request import MemoryRequest
    from repro.sim.engine import SimulationEngine
    from repro.sim.stats import StatsRegistry

    geometry = SystemConfig.paper_baseline().dram
    depth = 1024 if quick else 4096
    memctrl = MemCtrlConfig(
        read_queue_depth=depth, write_queue_depth=depth, kernel=kernel,
        transfer_pump=pump,
    )
    engine = SimulationEngine()
    stats = StatsRegistry()
    controller = ChannelController(
        engine, DdrChannel(geometry, 0), memctrl, stats, name="bench/ch0"
    )
    mapping = locality_centric_mapping(geometry)
    # Row-conflicting traffic across a handful of banks: every pick has to
    # consider the whole queue under the seed's linear scan.
    row_bytes = geometry.row_size_bytes
    banks_span = 4 * row_bytes  # 4 rows -> same bank on ChRaBgBkRoCo every 4 rows
    requests = []
    for index in range(depth):
        phys = (index % 8) * banks_span + (index // 8) * row_bytes
        request = MemoryRequest(phys_addr=phys, is_write=False)
        request.domain = "dram"
        request.dram_addr = mapping.map(phys)
        requests.append(request)
    started = time.perf_counter()
    for request in requests:
        if not controller.enqueue(request):
            raise RuntimeError("bench queue unexpectedly full")
    engine.run()
    wall = time.perf_counter() - started
    return BenchResult(
        "deep-queue", wall, engine.events_fired, _served_requests(stats)
    )


#: The fixed matrix: name -> callable(quick, kernel, pump, fabric) -> BenchResult.
BENCH_WORKLOADS: Dict[str, Callable[..., BenchResult]] = {
    "headline-sweep": _bench_transfer_sweep,
    "scenario-mix": _bench_scenario_mix,
    "replay-bursty": _bench_replay_bursty,
    "deep-queue": _bench_deep_queue,
}


def _aggregate(workloads: Dict[str, Dict]) -> Dict:
    """The aggregate row recomputed from per-workload metrics."""
    total_events = sum(metrics["events"] for metrics in workloads.values())
    total_wall = sum(metrics["wall_s"] for metrics in workloads.values())
    return {
        "wall_s": round(total_wall, 4),
        "events": total_events,
        "events_per_sec": round(total_events / total_wall, 1)
        if total_wall > 0
        else 0.0,
    }


def run_bench(
    quick: bool = False,
    names: Optional[List[str]] = None,
    repeats: Optional[int] = None,
    kernel: str = "object",
    transfer_pump: str = "object",
    fabric: str = "none",
) -> Dict:
    """Run the benchmark matrix and return one trajectory entry (a dict).

    Each workload runs ``repeats`` times (default 3, or 2 in quick mode) and
    the **fastest** run is reported -- the standard protocol for wall-clock
    benchmarks under scheduler/frequency noise.  The simulations are
    deterministic, so event counts are identical across repeats.  Each
    workload's ``wall_spread_pct`` -- the max-over-min spread of its repeat
    wall times -- travels with the entry, so a CI artifact shows *how noisy*
    the runner was when a regression gate is being diagnosed.

    ``kernel`` selects the DRAM service-kernel implementation for every
    workload (``object`` or ``soa``; see :mod:`repro.memctrl.kernel`);
    ``transfer_pump`` selects the transfer pump (``object`` or ``burst``;
    see :mod:`repro.memctrl.pump`).  Both axes are bit-identical at the
    event level, so event counts match across all four combinations and
    only the wall clock moves.  ``fabric`` selects the interconnect fabric
    (:mod:`repro.fabric`); only ``none`` keeps the matrix comparable to the
    committed trajectory -- a mesh changes the event stream.

    The entry carries the :func:`machine_fingerprint` of the measuring host.
    """
    from repro.fabric import validate_fabric
    from repro.memctrl.kernel import kernel_class
    from repro.memctrl.pump import validate_pump

    kernel_class(kernel)  # fail fast on unknown specs
    validate_pump(transfer_pump)
    validate_fabric(fabric)
    selected = names if names else list(BENCH_WORKLOADS)
    unknown = [name for name in selected if name not in BENCH_WORKLOADS]
    if unknown:
        known = ", ".join(BENCH_WORKLOADS)
        raise KeyError(f"unknown bench workload(s) {unknown}; known: {known}")
    if repeats is None:
        repeats = 2 if quick else 3
    results = {}
    for name in selected:
        outcome = BENCH_WORKLOADS[name](quick, kernel, transfer_pump, fabric)
        walls = [outcome.wall_s]
        for _ in range(repeats - 1):
            candidate = BENCH_WORKLOADS[name](quick, kernel, transfer_pump, fabric)
            walls.append(candidate.wall_s)
            if candidate.wall_s < outcome.wall_s:
                outcome = candidate
        metrics = outcome.to_dict()
        metrics["wall_spread_pct"] = (
            round(100.0 * (max(walls) - min(walls)) / min(walls), 1)
            if min(walls) > 0
            else 0.0
        )
        results[name] = metrics
    return {
        "quick": quick,
        "repeats": repeats,
        "kernel": kernel,
        "transfer_pump": transfer_pump,
        "fabric": fabric,
        "machine": machine_fingerprint(),
        "workloads": results,
        "aggregate": _aggregate(results),
    }


def with_baseline_ratio(entry: Dict, baseline: Dict) -> Dict:
    """Stamp ``entry`` with its speedup over a same-invocation baseline.

    ``baseline`` is another :func:`run_bench` entry measured in the *same*
    process (same machine state, interleaved or back-to-back) -- the only
    protocol under which a committed ratio is meaningful.  The returned copy
    carries a ``"baseline"`` block: the baseline's kernel/pump coordinates,
    its aggregate events/sec, and ``ratio`` = entry / baseline.
    """
    base_rate = baseline["aggregate"]["events_per_sec"]
    new_rate = entry["aggregate"]["events_per_sec"]
    stamped = dict(entry)
    stamped["baseline"] = {
        "kernel": baseline.get("kernel", "object"),
        "transfer_pump": baseline.get("transfer_pump", "object"),
        "fabric": baseline.get("fabric", "none"),
        "events_per_sec": base_rate,
        "ratio": round(new_rate / base_rate, 3) if base_rate > 0 else None,
    }
    return stamped


def profile_bench(
    quick: bool = False,
    names: Optional[List[str]] = None,
    kernel: str = "object",
    transfer_pump: str = "object",
    fabric: str = "none",
    top_n: int = 25,
) -> str:
    """Profile each workload once under cProfile; return a text report.

    One section per workload with the ``top_n`` functions by cumulative
    time.  This is the ``repro bench --profile`` payload: it answers "where
    does the hot path actually spend its time" next to the wall-clock
    numbers, and CI uploads it beside the bench artifact.  Profiled runs are
    much slower than plain ones, so the numbers here are *not* comparable to
    the trajectory -- only the shape of the profile is meaningful.
    """
    import cProfile
    import io
    import pstats

    from repro.fabric import validate_fabric
    from repro.memctrl.kernel import kernel_class
    from repro.memctrl.pump import validate_pump

    kernel_class(kernel)
    validate_pump(transfer_pump)
    validate_fabric(fabric)
    selected = names if names else list(BENCH_WORKLOADS)
    unknown = [name for name in selected if name not in BENCH_WORKLOADS]
    if unknown:
        known = ", ".join(BENCH_WORKLOADS)
        raise KeyError(f"unknown bench workload(s) {unknown}; known: {known}")
    sections = [
        f"bench profile: quick={quick} kernel={kernel} "
        f"transfer_pump={transfer_pump} fabric={fabric} top={top_n}"
    ]
    for name in selected:
        profiler = cProfile.Profile()
        profiler.enable()
        BENCH_WORKLOADS[name](quick, kernel, transfer_pump, fabric)
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top_n)
        sections.append(f"== {name} ==\n{buffer.getvalue().rstrip()}")
    return "\n\n".join(sections) + "\n"


def load_trajectory(path: Path) -> Dict:
    """Load (or initialise) the committed benchmark trajectory document."""
    if Path(path).exists():
        with open(path) as handle:
            return json.load(handle)
    return {"schema": BENCH_SCHEMA, "entries": []}


def append_entry(path: Path, label: str, entry: Dict) -> Dict:
    """Append a labelled run to the trajectory and write it back.

    Re-running the same label in the same mode replaces that entry; full and
    quick runs are distinct entries even under one label (their matrices are
    not comparable).
    """
    document = load_trajectory(path)
    document["entries"] = [
        existing for existing in document.get("entries", [])
        if existing.get("label") != label
        or existing.get("quick") != entry.get("quick")
    ]
    document["entries"].append({"label": label, **entry})
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return document


def check_regression(
    document: Dict, entry: Dict, tolerance: Optional[float] = None
) -> Optional[str]:
    """Compare ``entry`` against the last committed entry of the same mode.

    Returns ``None`` when within tolerance, otherwise a human-readable
    failure message.  Workloads are compared on events/sec; the aggregate is
    the gate (per-workload numbers are informational).

    The default tolerance is :data:`REGRESSION_TOLERANCE` (20 %), overridable
    via the ``REPRO_BENCH_TOLERANCE`` environment variable -- committed
    baselines are machine-specific, so CI runners on slower hardware can
    widen the gate without a code change.
    """
    if tolerance is None:
        tolerance = float(
            os.environ.get("REPRO_BENCH_TOLERANCE", REGRESSION_TOLERANCE)
        )
    entries = [
        existing
        for existing in document.get("entries", [])
        if existing.get("quick") == entry["quick"]
    ]
    if not entries:
        return None
    baseline = entries[-1]
    base_rate = baseline["aggregate"]["events_per_sec"]
    new_rate = entry["aggregate"]["events_per_sec"]
    if base_rate <= 0:
        return None
    if new_rate < base_rate * (1.0 - tolerance):
        return (
            f"events/sec regressed beyond {tolerance:.0%}: "
            f"{new_rate:.0f} vs committed {base_rate:.0f} "
            f"(entry {baseline.get('label')!r})"
        )
    return None


def regressing_workloads(
    document: Dict, entry: Dict, tolerance: Optional[float] = None
) -> List[str]:
    """The workloads to blame for a failed :func:`check_regression` gate.

    Per-workload events/sec compared against the last committed entry of the
    same mode, with the same tolerance as the aggregate gate.  If no single
    workload crosses the threshold (the aggregate can regress through many
    small slowdowns), the one with the worst new/baseline ratio is returned,
    so the caller always has a minimal rerun set.
    """
    if tolerance is None:
        tolerance = float(
            os.environ.get("REPRO_BENCH_TOLERANCE", REGRESSION_TOLERANCE)
        )
    entries = [
        existing
        for existing in document.get("entries", [])
        if existing.get("quick") == entry["quick"]
    ]
    if not entries:
        return []
    baseline = entries[-1].get("workloads", {})
    ratios: Dict[str, float] = {}
    for name, metrics in entry.get("workloads", {}).items():
        base = baseline.get(name, {}).get("events_per_sec", 0.0)
        if base > 0:
            ratios[name] = metrics["events_per_sec"] / base
    suspects = [
        name for name, ratio in ratios.items() if ratio < 1.0 - tolerance
    ]
    if not suspects and ratios:
        suspects = [min(ratios, key=ratios.get)]
    return suspects


def merge_rerun(entry: Dict, rerun: Dict) -> Dict:
    """Fold a targeted rerun into ``entry``, keeping the faster measurement.

    The CI flake-relief path: when the gate trips, only the regressing
    workloads are rerun once; a rerun that comes back faster replaces that
    workload's metrics (fastest-of-all-repeats, the same protocol as
    ``run_bench`` itself) and the aggregate is recomputed.  Which workloads
    were rerun is recorded under ``"reran"`` so the artifact shows it.
    """
    workloads = dict(entry["workloads"])
    reran = sorted(rerun.get("workloads", {}))
    for name, metrics in rerun.get("workloads", {}).items():
        if name not in workloads:
            continue
        if metrics["events_per_sec"] > workloads[name]["events_per_sec"]:
            spread = workloads[name].get("wall_spread_pct")
            workloads[name] = dict(metrics)
            if spread is not None:
                # The spread of the original repeats is the interesting
                # noise signal; the single rerun has none of its own.
                workloads[name]["wall_spread_pct"] = spread
    merged = dict(entry)
    merged["workloads"] = workloads
    merged["aggregate"] = _aggregate(workloads)
    merged["reran"] = reran
    return merged


__all__ = [
    "BENCH_FILENAME",
    "BENCH_WORKLOADS",
    "BenchResult",
    "append_entry",
    "check_regression",
    "load_trajectory",
    "machine_fingerprint",
    "merge_rerun",
    "profile_bench",
    "regressing_workloads",
    "run_bench",
    "with_baseline_ratio",
]
