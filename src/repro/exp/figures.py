"""The paper's tables/figures as declarative, cache-aware computations.

Each entry of :data:`FIGURES` describes one output file under ``results/``:

* ``specs(config)`` enumerates every :class:`~repro.exp.spec.ExperimentSpec`
  the figure needs, so an orchestrator can prefetch them in parallel;
* ``compute(provider)`` fetches outcomes through an
  :class:`~repro.exp.runner.ExperimentProvider` and reduces them to a plain
  data dict (rows plus whatever the regression assertions inspect);
* ``render(data)`` turns that dict into the exact text table the benchmark
  suite has always written.

The pytest benchmark modules and the ``python -m repro`` CLI both go through
this registry, so their outputs are byte-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.end_to_end import evaluate_prim_suite, suite_summary
from repro.analysis.report import format_table, geometric_mean
from repro.energy.cacti import pim_mmu_buffer_overhead
from repro.energy.system import SystemEnergyModel
from repro.sim.config import DcePolicy, DesignPoint, SystemConfig
from repro.transfer.descriptor import TransferDirection
from repro.workloads.patterns import AccessPattern

from repro.exp.runner import ExperimentProvider
from repro.exp.spec import (
    ContentionSpec,
    DceOrderSpec,
    ExperimentSpec,
    MemcpySpec,
    ReadBandwidthSpec,
    SoftwareThreadPolicySpec,
    SoftwareTransferSeriesSpec,
    TransferSpec,
)

KIB = 1024
MIB = 1024 * 1024

FigureData = Dict[str, object]

# Shared figure constants (formerly scattered across benchmarks/test_fig*.py).
TRANSFER_PROBE_BYTES = 512 * KIB
ABLATION_SIZES = (1 * MIB, 16 * MIB, 256 * MIB)
DIRECTIONS = (TransferDirection.DRAM_TO_PIM, TransferDirection.PIM_TO_DRAM)
# Figure 13: the paper's transfers span many OS scheduling quanta (they move
# tens of MB); the 512 KB steady-state window scales the quantum down
# proportionally to keep the transfer-to-quantum ratio comparable.
FIG13_QUANTUM_NS = 25_000.0
FIG13_COMPUTE_COUNTS = (0, 8, 16, 24)
FIG13_MEMORY_INTENSITIES = ("low", "medium", "high", "very_high")
FIG06_SERIES_WINDOWS = 8
FIG08_PROBE_BYTES = 2 * MIB
FIG14_COPY_BYTES = 2 * MIB
FIG14_MEMORY_CONFIGS = (("2C-4R", 2, 2), ("4C-8R", 4, 2), ("4C-16R", 4, 4))


@dataclass(frozen=True)
class Figure:
    """One regenerable output of the paper's evaluation."""

    name: str
    filename: str
    description: str
    specs: Callable[[SystemConfig], Tuple[ExperimentSpec, ...]]
    compute: Callable[[ExperimentProvider], FigureData]
    render: Callable[[FigureData], str]
    fast: bool = False  # cheap enough for the CI figure-smoke tier


def write_figure(results_dir: Path, name: str, text: str) -> Path:
    """Write one rendered figure/table under ``results_dir``."""
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / name
    path.write_text(text + "\n")
    return path


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def _table1_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return ()


def compute_table1(provider: ExperimentProvider) -> FigureData:
    rows = [
        {"parameter": key, "value": value}
        for key, value in provider.config.describe().items()
    ]
    return {"rows": rows}


def render_table1(data: FigureData) -> str:
    return format_table(data["rows"], columns=["parameter", "value"], title="Table I")


# ---------------------------------------------------------------------------
# Figure 4 -- CPU cores and system power during transfers
# ---------------------------------------------------------------------------

_FIG04_POINTS = (DesignPoint.BASELINE, DesignPoint.BASE_DHP)


def _fig04_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return tuple(
        TransferSpec(point, direction, TRANSFER_PROBE_BYTES)
        for direction in DIRECTIONS
        for point in _FIG04_POINTS
    )


def compute_fig04(provider: ExperimentProvider) -> FigureData:
    config = provider.config
    rows = []
    for direction in DIRECTIONS:
        for point in _FIG04_POINTS:
            experiment = provider.get(point, direction, total_bytes=TRANSFER_PROBE_BYTES)
            result = experiment.result
            active_cores = result.cpu_core_busy_ns / result.duration_ns
            power = SystemEnergyModel(config).system_power_during_transfer(result)
            rows.append(
                {
                    "direction": direction.value,
                    "design": point.label,
                    "active_cores_avg": active_cores,
                    "core_utilization_%": 100.0 * active_cores / config.cpu.num_cores,
                    "system_power_W": power,
                }
            )
    return {"rows": rows}


def render_fig04(data: FigureData) -> str:
    return format_table(
        data["rows"],
        columns=[
            "direction",
            "design",
            "active_cores_avg",
            "core_utilization_%",
            "system_power_W",
        ],
        title="Figure 4: CPU cores and system power during DRAM<->PIM transfers",
    )


# ---------------------------------------------------------------------------
# Figure 6 -- per-channel write-throughput breakdown over time
# ---------------------------------------------------------------------------

_FIG06_SW_SPEC = SoftwareTransferSeriesSpec(
    size_per_core_bytes=1024, series_windows=FIG06_SERIES_WINDOWS
)
_FIG06_HW_SPEC = MemcpySpec(
    design_point=DesignPoint.BASE_DHP,
    total_bytes=TRANSFER_PROBE_BYTES,
    dst_base=TRANSFER_PROBE_BYTES,
    series_windows=FIG06_SERIES_WINDOWS,
)


def _fig06_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return (_FIG06_SW_SPEC, _FIG06_HW_SPEC)


def compute_fig06(provider: ExperimentProvider) -> FigureData:
    sw = provider.run(_FIG06_SW_SPEC)
    hw = provider.run(_FIG06_HW_SPEC)
    sw_series = sw["write_window_series"]
    hw_series = hw["write_window_series"]
    rows = []
    num_windows = max(len(series) for series in sw_series.values())
    for window in range(num_windows):
        row: Dict[str, object] = {"window": window}
        for channel, series in sorted(sw_series.items()):
            row[f"sw_pim_ch{channel}_KB"] = (
                series[window] if window < len(series) else 0
            ) / 1024
        for channel, series in sorted(hw_series.items()):
            row[f"hw_dram_ch{channel}_KB"] = (
                series[window] if window < len(series) else 0
            ) / 1024
        rows.append(row)
    return {
        "rows": rows,
        "sw_series": sw_series,
        "hw_per_channel_dram_bytes": hw["per_channel_dram_bytes"],
    }


def render_fig06(data: FigureData) -> str:
    rows = data["rows"]
    return format_table(
        rows,
        columns=list(rows[0].keys()),
        title="Figure 6: per-channel write traffic per time window (KB)",
    )


# ---------------------------------------------------------------------------
# Figure 8 -- DRAM bandwidth, locality- vs MLP-centric mapping
# ---------------------------------------------------------------------------

_FIG08_PATTERNS = (AccessPattern.SEQUENTIAL, AccessPattern.STRIDED)
_FIG08_MAPPINGS = (
    ("locality-centric", DesignPoint.BASELINE),
    ("MLP-centric", DesignPoint.BASE_DHP),
)


def _fig08_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return tuple(
        ReadBandwidthSpec(pattern, point, total_bytes=FIG08_PROBE_BYTES)
        for pattern in _FIG08_PATTERNS
        for _, point in _FIG08_MAPPINGS
    )


def compute_fig08(provider: ExperimentProvider) -> FigureData:
    rows = []
    for pattern in _FIG08_PATTERNS:
        bandwidths = {}
        for label, point in _FIG08_MAPPINGS:
            bandwidths[label] = provider.run(
                ReadBandwidthSpec(pattern, point, total_bytes=FIG08_PROBE_BYTES)
            )
        rows.append(
            {
                "pattern": pattern.value,
                "locality_gbps": bandwidths["locality-centric"],
                "mlp_gbps": bandwidths["MLP-centric"],
                "locality_normalised": bandwidths["locality-centric"]
                / bandwidths["MLP-centric"],
            }
        )
    return {"rows": rows}


def render_fig08(data: FigureData) -> str:
    return format_table(
        data["rows"],
        columns=["pattern", "locality_gbps", "mlp_gbps", "locality_normalised"],
        title="Figure 8: normalized DRAM bandwidth, locality- vs MLP-centric mapping",
    )


# ---------------------------------------------------------------------------
# Figure 13 -- transfer-latency sensitivity to co-located contenders
# ---------------------------------------------------------------------------

_FIG13_POINTS = (DesignPoint.BASELINE, DesignPoint.BASE_DHP)


def _fig13_transfer_spec(
    point: DesignPoint, contention: Optional[ContentionSpec]
) -> TransferSpec:
    return TransferSpec(
        design_point=point,
        direction=TransferDirection.DRAM_TO_PIM,
        total_bytes=TRANSFER_PROBE_BYTES,
        contention=contention,
        scheduling_quantum_ns=FIG13_QUANTUM_NS,
    )


def _fig13a_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return tuple(
        _fig13_transfer_spec(
            point, ContentionSpec("compute", count) if count else None
        )
        for point in _FIG13_POINTS
        for count in FIG13_COMPUTE_COUNTS
    )


def compute_fig13a(provider: ExperimentProvider) -> FigureData:
    rows = []
    reference: Dict[DesignPoint, float] = {}
    for point in _FIG13_POINTS:
        for count in FIG13_COMPUTE_COUNTS:
            contention = ContentionSpec("compute", count) if count else None
            latency = provider.run(_fig13_transfer_spec(point, contention)).duration_ns
            reference.setdefault(point, latency)
            rows.append(
                {
                    "design": point.label,
                    "contenders": count,
                    "latency_us": latency / 1e3,
                    "normalised": latency / reference[point],
                }
            )
    return {"rows": rows}


def render_fig13a(data: FigureData) -> str:
    return format_table(
        data["rows"],
        columns=["design", "contenders", "latency_us", "normalised"],
        title="Figure 13(a): DRAM->PIM latency vs number of spin-lock CPU contenders",
    )


def _fig13b_contentions(config: SystemConfig) -> Tuple[ContentionSpec, ...]:
    return tuple(
        ContentionSpec("memory", config.cpu.num_cores // 2, intensity)
        for intensity in FIG13_MEMORY_INTENSITIES
    )


def _fig13b_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    specs: List[ExperimentSpec] = []
    for point in _FIG13_POINTS:
        specs.append(_fig13_transfer_spec(point, None))
        for contention in _fig13b_contentions(config):
            specs.append(_fig13_transfer_spec(point, contention))
    return tuple(specs)


def compute_fig13b(provider: ExperimentProvider) -> FigureData:
    rows = []
    for point in _FIG13_POINTS:
        quiet = provider.run(_fig13_transfer_spec(point, None)).duration_ns
        rows.append(
            {
                "design": point.label,
                "intensity": "none",
                "latency_us": quiet / 1e3,
                "normalised": 1.0,
            }
        )
        for contention in _fig13b_contentions(provider.config):
            latency = provider.run(_fig13_transfer_spec(point, contention)).duration_ns
            rows.append(
                {
                    "design": point.label,
                    "intensity": contention.intensity,
                    "latency_us": latency / 1e3,
                    "normalised": latency / quiet,
                }
            )
    return {"rows": rows}


def render_fig13b(data: FigureData) -> str:
    return format_table(
        data["rows"],
        columns=["design", "intensity", "latency_us", "normalised"],
        title="Figure 13(b): DRAM->PIM latency vs memory-access intensity of contenders",
    )


# ---------------------------------------------------------------------------
# Figure 14 -- DRAM throughput during DRAM->DRAM copies
# ---------------------------------------------------------------------------


def _fig14_spec(channels: int, ranks: int, point: DesignPoint) -> MemcpySpec:
    return MemcpySpec(
        design_point=point,
        total_bytes=FIG14_COPY_BYTES,
        dst_base=FIG14_COPY_BYTES,
        channels=channels,
        ranks_per_channel=ranks,
    )


def _fig14_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return tuple(
        _fig14_spec(channels, ranks, point)
        for _, channels, ranks in FIG14_MEMORY_CONFIGS
        for point in (DesignPoint.BASELINE, DesignPoint.BASE_DHP)
    )


def _memcpy_bandwidth(outcome: Dict[str, object]) -> float:
    return (outcome["dram_read_bytes"] + outcome["dram_write_bytes"]) / outcome[
        "duration_ns"
    ]


def compute_fig14(provider: ExperimentProvider) -> FigureData:
    rows = []
    for label, channels, ranks in FIG14_MEMORY_CONFIGS:
        baseline = _memcpy_bandwidth(
            provider.run(_fig14_spec(channels, ranks, DesignPoint.BASELINE))
        )
        pim_mmu = _memcpy_bandwidth(
            provider.run(_fig14_spec(channels, ranks, DesignPoint.BASE_DHP))
        )
        rows.append(
            {
                "memory_config": label,
                "baseline_gbps": baseline,
                "pim_mmu_gbps": pim_mmu,
                "normalised": pim_mmu / baseline,
            }
        )
    return {"rows": rows}


def render_fig14(data: FigureData) -> str:
    return format_table(
        data["rows"],
        columns=["memory_config", "baseline_gbps", "pim_mmu_gbps", "normalised"],
        title="Figure 14: DRAM throughput during DRAM->DRAM copy (normalised to baseline)",
    )


# ---------------------------------------------------------------------------
# Figure 15 -- ablation of DCE / HetMap / PIM-MS
# ---------------------------------------------------------------------------


def _fig15_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return tuple(
        TransferSpec(point, direction, size)
        for direction in DIRECTIONS
        for size in ABLATION_SIZES
        for point in DesignPoint
    )


def compute_fig15(provider: ExperimentProvider) -> FigureData:
    rows = []
    for direction in DIRECTIONS:
        for size in ABLATION_SIZES:
            base = provider.get(DesignPoint.BASELINE, direction, size)
            for point in DesignPoint:
                experiment = provider.get(point, direction, size)
                rows.append(
                    {
                        "direction": direction.value,
                        "size_MB": size // MIB,
                        "design": point.label,
                        "throughput_gbps": experiment.throughput_gbps,
                        "throughput_norm": experiment.throughput_gbps
                        / base.throughput_gbps,
                        "energy_J": experiment.energy_joules,
                        "energy_norm": experiment.energy_joules / base.energy_joules,
                    }
                )
    return {"rows": rows}


def render_fig15(data: FigureData) -> str:
    return format_table(
        data["rows"],
        columns=[
            "direction",
            "size_MB",
            "design",
            "throughput_gbps",
            "throughput_norm",
            "energy_J",
            "energy_norm",
        ],
        title="Figure 15: ablation of DCE (D), HetMap (H) and PIM-MS (P)",
        float_format="{:.3f}",
    )


# ---------------------------------------------------------------------------
# Figure 16 -- end-to-end execution time of the PrIM workloads
# ---------------------------------------------------------------------------

_FIG16_POINTS = (DesignPoint.BASELINE, DesignPoint.BASE_DHP)


def _fig16_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return tuple(
        TransferSpec(point, direction, TRANSFER_PROBE_BYTES)
        for direction in DIRECTIONS
        for point in _FIG16_POINTS
    )


def compute_fig16(provider: ExperimentProvider) -> FigureData:
    throughputs = {}
    for direction in DIRECTIONS:
        for point in _FIG16_POINTS:
            throughputs[(point, direction)] = provider.get(
                point, direction, TRANSFER_PROBE_BYTES
            ).throughput_gbps
    results = evaluate_prim_suite(
        baseline_d2p_gbps=throughputs[
            (DesignPoint.BASELINE, TransferDirection.DRAM_TO_PIM)
        ],
        baseline_p2d_gbps=throughputs[
            (DesignPoint.BASELINE, TransferDirection.PIM_TO_DRAM)
        ],
        pimmmu_d2p_gbps=throughputs[
            (DesignPoint.BASE_DHP, TransferDirection.DRAM_TO_PIM)
        ],
        pimmmu_p2d_gbps=throughputs[
            (DesignPoint.BASE_DHP, TransferDirection.PIM_TO_DRAM)
        ],
    )
    rows = []
    for result in results:
        baseline = result.normalised_breakdown("baseline")
        pim_mmu = result.normalised_breakdown("pim-mmu")
        rows.append(
            {
                "workload": result.workload,
                "base_d2p": baseline["DRAM->PIM"],
                "base_kernel": baseline["PIM kernel"],
                "base_p2d": baseline["PIM->DRAM"],
                "pimmmu_total": sum(pim_mmu.values()),
                "speedup": result.speedup,
            }
        )
    summary = suite_summary(results)
    return {
        "rows": rows,
        "summary": summary,
        "speedups": {result.workload: result.speedup for result in results},
        "num_workloads": len(results),
    }


def render_fig16(data: FigureData) -> str:
    summary = data["summary"]
    return format_table(
        data["rows"],
        columns=[
            "workload",
            "base_d2p",
            "base_kernel",
            "base_p2d",
            "pimmmu_total",
            "speedup",
        ],
        title=(
            "Figure 16: normalized end-to-end execution time "
            f"(mean speedup {summary['mean_speedup']:.2f}x, "
            f"max {summary['max_speedup']:.2f}x)"
        ),
    )


# ---------------------------------------------------------------------------
# Headline summary
# ---------------------------------------------------------------------------


def _headline_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    sweep = tuple(
        TransferSpec(point, direction, size)
        for direction in DIRECTIONS
        for size in ABLATION_SIZES
        for point in (DesignPoint.BASELINE, DesignPoint.BASE_DHP)
    )
    return sweep + _fig16_specs(config)


def compute_headline(provider: ExperimentProvider) -> FigureData:
    throughput_gains = []
    energy_gains = []
    for direction in DIRECTIONS:
        for size in ABLATION_SIZES:
            base = provider.get(DesignPoint.BASELINE, direction, size)
            full = provider.get(DesignPoint.BASE_DHP, direction, size)
            throughput_gains.append(full.throughput_gbps / base.throughput_gbps)
            energy_gains.append(base.energy_joules / full.energy_joules)
    base_d2p = provider.get(
        DesignPoint.BASELINE, TransferDirection.DRAM_TO_PIM, TRANSFER_PROBE_BYTES
    )
    base_p2d = provider.get(
        DesignPoint.BASELINE, TransferDirection.PIM_TO_DRAM, TRANSFER_PROBE_BYTES
    )
    full_d2p = provider.get(
        DesignPoint.BASE_DHP, TransferDirection.DRAM_TO_PIM, TRANSFER_PROBE_BYTES
    )
    full_p2d = provider.get(
        DesignPoint.BASE_DHP, TransferDirection.PIM_TO_DRAM, TRANSFER_PROBE_BYTES
    )
    end_to_end = suite_summary(
        evaluate_prim_suite(
            base_d2p.throughput_gbps,
            base_p2d.throughput_gbps,
            full_d2p.throughput_gbps,
            full_p2d.throughput_gbps,
        )
    )
    rows = [
        {
            "metric": "transfer throughput gain (avg)",
            "paper": 4.1,
            "reproduced": geometric_mean(throughput_gains),
        },
        {
            "metric": "transfer throughput gain (max)",
            "paper": 6.9,
            "reproduced": max(throughput_gains),
        },
        {
            "metric": "energy-efficiency gain (avg)",
            "paper": 4.1,
            "reproduced": geometric_mean(energy_gains),
        },
        {
            "metric": "energy-efficiency gain (max)",
            "paper": 6.9,
            "reproduced": max(energy_gains),
        },
        {
            "metric": "end-to-end speedup (avg)",
            "paper": 2.2,
            "reproduced": end_to_end["mean_speedup"],
        },
        {
            "metric": "end-to-end speedup (max)",
            "paper": 4.0,
            "reproduced": end_to_end["max_speedup"],
        },
    ]
    return {
        "rows": rows,
        "throughput_gains": throughput_gains,
        "energy_gains": energy_gains,
        "end_to_end": end_to_end,
    }


def render_headline(data: FigureData) -> str:
    return format_table(
        data["rows"],
        columns=["metric", "paper", "reproduced"],
        title="Headline summary (paper vs reproduced)",
    )


# ---------------------------------------------------------------------------
# §VI-C -- implementation overhead of the DCE buffers
# ---------------------------------------------------------------------------


def _overhead_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return ()


def compute_overhead(provider: ExperimentProvider) -> FigureData:
    overhead = pim_mmu_buffer_overhead()
    rows = [
        {
            "component": "DCE data buffer (16 KB)",
            "area_mm2": overhead["data_buffer_mm2"],
        },
        {
            "component": "DCE address buffer (64 KB)",
            "area_mm2": overhead["address_buffer_mm2"],
        },
        {"component": "total", "area_mm2": overhead["total_mm2"]},
        {
            "component": "CPU die increase (%)",
            "area_mm2": overhead["die_increase_percent"],
        },
    ]
    return {"rows": rows, "overhead": overhead}


def render_overhead(data: FigureData) -> str:
    return format_table(
        data["rows"],
        columns=["component", "area_mm2"],
        title="PIM-MMU implementation overhead (paper: 0.85 mm^2, 0.37 %)",
        float_format="{:.3f}",
    )


# ---------------------------------------------------------------------------
# Design-choice ablations (DESIGN.md)
# ---------------------------------------------------------------------------

_ABLATION_VARIANTS: Tuple[Tuple[str, ExperimentSpec], ...] = (
    ("PIM-MS order", DceOrderSpec(policy=DcePolicy.PIM_MS)),
    ("serial per-core order", DceOrderSpec(policy=DcePolicy.SERIAL_PER_CORE)),
    ("4 KB data buffer", DceOrderSpec(policy=DcePolicy.PIM_MS, data_buffer_bytes=4 * KIB)),
    (
        "16 KB data buffer",
        DceOrderSpec(policy=DcePolicy.PIM_MS, data_buffer_bytes=16 * KIB),
    ),
    ("baseline threads: blocked", SoftwareThreadPolicySpec(thread_policy="blocked")),
    (
        "baseline threads: round_robin",
        SoftwareThreadPolicySpec(thread_policy="round_robin"),
    ),
)


def _ablation_specs(config: SystemConfig) -> Tuple[ExperimentSpec, ...]:
    return tuple(spec for _, spec in _ABLATION_VARIANTS)


def compute_ablation(provider: ExperimentProvider) -> FigureData:
    rows = [
        {"variant": label, "throughput_gbps": provider.run(spec)}
        for label, spec in _ABLATION_VARIANTS
    ]
    return {"rows": rows}


def render_ablation(data: FigureData) -> str:
    return format_table(
        data["rows"],
        columns=["variant", "throughput_gbps"],
        title="Design-choice ablations (DRAM->PIM, 512 KB)",
    )


# ---------------------------------------------------------------------------
# Registry + orchestration
# ---------------------------------------------------------------------------

FIGURES: Dict[str, Figure] = {
    figure.name: figure
    for figure in (
        Figure(
            name="table1",
            filename="table1_config.txt",
            description="Table I: baseline system and PIM-MMU configuration",
            specs=_table1_specs,
            compute=compute_table1,
            render=render_table1,
            fast=True,
        ),
        Figure(
            name="fig04",
            filename="fig04_cpu_power.txt",
            description="Figure 4: CPU utilization and system power during transfers",
            specs=_fig04_specs,
            compute=compute_fig04,
            render=render_fig04,
            fast=True,
        ),
        Figure(
            name="fig06",
            filename="fig06_channel_breakdown.txt",
            description="Figure 6: per-channel write-throughput breakdown over time",
            specs=_fig06_specs,
            compute=compute_fig06,
            render=render_fig06,
            fast=True,
        ),
        Figure(
            name="fig08",
            filename="fig08_mapping_bandwidth.txt",
            description="Figure 8: DRAM bandwidth, locality- vs MLP-centric mapping",
            specs=_fig08_specs,
            compute=compute_fig08,
            render=render_fig08,
            fast=True,
        ),
        Figure(
            name="fig13a",
            filename="fig13a_compute_contention.txt",
            description="Figure 13(a): latency vs spin-lock CPU contenders",
            specs=_fig13a_specs,
            compute=compute_fig13a,
            render=render_fig13a,
        ),
        Figure(
            name="fig13b",
            filename="fig13b_memory_contention.txt",
            description="Figure 13(b): latency vs memory-intensive contenders",
            specs=_fig13b_specs,
            compute=compute_fig13b,
            render=render_fig13b,
        ),
        Figure(
            name="fig14",
            filename="fig14_dram_throughput.txt",
            description="Figure 14: DRAM throughput during DRAM->DRAM copies",
            specs=_fig14_specs,
            compute=compute_fig14,
            render=render_fig14,
        ),
        Figure(
            name="fig15",
            filename="fig15_ablation.txt",
            description="Figure 15: ablation of DCE, HetMap and PIM-MS",
            specs=_fig15_specs,
            compute=compute_fig15,
            render=render_fig15,
            fast=True,
        ),
        Figure(
            name="fig16",
            filename="fig16_prim_end_to_end.txt",
            description="Figure 16: end-to-end execution time of the PrIM workloads",
            specs=_fig16_specs,
            compute=compute_fig16,
            render=render_fig16,
        ),
        Figure(
            name="headline",
            filename="headline_summary.txt",
            description="Headline summary: paper vs reproduced gains",
            specs=_headline_specs,
            compute=compute_headline,
            render=render_headline,
        ),
        Figure(
            name="overhead",
            filename="overhead_area.txt",
            description="SVI-C: implementation overhead of the DCE SRAM buffers",
            specs=_overhead_specs,
            compute=compute_overhead,
            render=render_overhead,
            fast=True,
        ),
        Figure(
            name="ablation",
            filename="ablation_design_choices.txt",
            description="Design-choice ablations (issue order, buffer size, threads)",
            specs=_ablation_specs,
            compute=compute_ablation,
            render=render_ablation,
        ),
    )
}


def select_figures(
    names: Optional[Sequence[str]] = None, fast: bool = False
) -> List[Figure]:
    """Resolve figure names (or the full/fast set) to registry entries.

    Explicit names always win: a figure asked for by name is never silently
    dropped by the ``fast`` filter -- combining the two raises instead.
    """
    if names:
        unknown = [name for name in names if name not in FIGURES]
        if unknown:
            known = ", ".join(FIGURES)
            raise KeyError(f"unknown figure(s) {unknown}; known: {known}")
        if fast:
            not_fast = [name for name in names if not FIGURES[name].fast]
            if not_fast:
                raise KeyError(
                    f"figure(s) {not_fast} are not in the fast subset; "
                    "drop --fast or the name(s)"
                )
        return [FIGURES[name] for name in dict.fromkeys(names)]
    selected = list(FIGURES.values())
    if fast:
        selected = [figure for figure in selected if figure.fast]
    return selected


def generate_figures(
    provider: ExperimentProvider,
    figures: Sequence[Figure],
    results_dir: Path,
) -> List[Path]:
    """Prefetch every needed experiment in parallel, then render and write.

    The prefetch pools the specs of *all* selected figures, so shared
    experiments simulate once and independent ones fan out across workers.
    """
    specs: List[ExperimentSpec] = []
    for figure in figures:
        specs.extend(figure.specs(provider.config))
    provider.prefetch(specs)
    paths = []
    for figure in figures:
        text = figure.render(figure.compute(provider))
        paths.append(write_figure(results_dir, figure.filename, text))
    return paths


__all__ = [
    "FIGURES",
    "Figure",
    "FigureData",
    "generate_figures",
    "select_figures",
    "write_figure",
]
