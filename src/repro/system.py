"""Top-level simulated system: CPU + DRAM + PIM + (optionally) PIM-MMU.

:class:`PimSystem` wires the substrates together and exposes the small
interface every traffic source uses:

* :meth:`PimSystem.submit` decodes a physical address through the active
  system mapper (homogeneous locality-centric mapping for the baseline,
  HetMap for PIM-MMU design points) and routes the request to the right
  channel controller;
* :meth:`PimSystem.retry_when_possible` provides back-pressure notifications;
* :meth:`PimSystem.pim_heap_addr` converts a ``(PIM core id, heap offset)``
  pair into a physical address the way the runtimes do.

Use :func:`build_system` to construct a system for one of the Figure 15
design points.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.hetmap import HeterogeneousMapper
from repro.fabric import create_fabric
from repro.host.cpu import HostCpu
from repro.host.llc import LastLevelCache
from repro.host.os_scheduler import RoundRobinScheduler
from repro.mapping.address import DramAddress
from repro.mapping.partition import pim_core_coordinates, pim_heap_physical_address
from repro.mapping.system_mapper import (
    DRAM_DOMAIN,
    PIM_DOMAIN,
    HomogeneousMapper,
    SystemAddressMapper,
)
from repro.memctrl.request import MemoryRequest
from repro.memctrl.system import MemorySystem
from repro.pim.topology import PimTopology
from repro.sim.config import DesignPoint, SystemConfig
from repro.sim.engine import SimulationEngine
from repro.sim.stats import StatsRegistry


class TraceHookHandle:
    """Detachable registration of one trace hook (idempotent ``detach``)."""

    def __init__(
        self, system: "PimSystem", hook: Callable[[MemoryRequest, float], None]
    ) -> None:
        self._system = system
        self._hook = hook

    @property
    def attached(self) -> bool:
        return self._hook in self._system._trace_hooks

    def detach(self) -> None:
        """Remove the hook; safe to call any number of times."""
        self._system.detach_trace_hook(self._hook)


class PimSystem:
    """A fully wired simulated PIM server."""

    def __init__(
        self,
        config: SystemConfig,
        mapper: SystemAddressMapper,
        design_point: DesignPoint = DesignPoint.BASELINE,
        engine: Optional[SimulationEngine] = None,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.config = config
        self.design_point = design_point
        self.mapper = mapper
        self.engine = engine if engine is not None else SimulationEngine()
        self.stats = stats if stats is not None else StatsRegistry()
        self.dram = MemorySystem(
            self.engine, config.dram, config.memctrl, self.stats, name="dram"
        )
        self.pim = MemorySystem(
            self.engine, config.pim, config.memctrl, self.stats, name="pim"
        )
        self.cpu = HostCpu(config.cpu)
        self.llc = LastLevelCache.from_config(config.cpu)
        self.topology = PimTopology.build(config.pim)
        self.scheduler = RoundRobinScheduler(
            self.engine,
            self.cpu,
            num_cores=config.cpu.num_cores,
            quantum_ns=config.os.scheduling_quantum_ns,
        )
        # Observers of every *accepted* memory request (trace recording).
        self._trace_hooks: List[Callable[[MemoryRequest, float], None]] = []
        # Constant-time domain dispatch for the submit hot path.
        self._domain_systems = {DRAM_DOMAIN: self.dram, PIM_DOMAIN: self.pim}
        self._domain_controllers = {
            DRAM_DOMAIN: self.dram.controllers,
            PIM_DOMAIN: self.pim.controllers,
        }
        # Fast-path state for pim_heap_addr: per-core base block cache plus
        # the provably-affine layout description (None -> generic path).
        self._heap_core_base: dict = {}
        self._heap_affine = self._probe_heap_affine()
        # Interconnect fabric between engines and the controllers.  ``none``
        # builds no object at all: every submit path keeps its original
        # direct-dispatch code behind a single ``is not None`` check, which
        # is how the pass-through stays bit-identical by construction.
        self.fabric = self._fabric = create_fabric(config.memctrl.fabric, self)

    def _probe_heap_affine(self):
        """Precompute the PIM-heap address layout when it is provably affine.

        The PIM side always uses a locality-centric bit-field mapping; when
        that mapping has no XOR hashes and stores the row and column fields
        as single contiguous slices, a heap address is a pure function of the
        core's (channel, rank, bank group, bank) base bits plus shifted
        row/column bits -- cached integer ops instead of the generic
        coordinate/inverse walk per request.  Returns ``None`` (generic path)
        for any mapping where that cannot be proven.
        """
        mapping = self.mapper.mapping_for(PIM_DOMAIN)
        layout = getattr(mapping, "layout", None)
        if layout is None or getattr(mapping, "xor_hashes", ()):
            return None
        positions = {}
        cursor = 0
        for slice_ in layout:
            positions.setdefault(slice_.name, []).append(
                (slice_.field_lsb, cursor, slice_.width)
            )
            cursor += slice_.width
        row_slices = positions.get("row", [])
        column_slices = positions.get("column", [])
        if len(row_slices) != 1 or len(column_slices) != 1:
            return None
        if row_slices[0][0] != 0 or column_slices[0][0] != 0:
            return None
        geometry = mapping.geometry
        columns = geometry.columns_per_row
        return (
            row_slices[0][1],               # row shift within the block index
            column_slices[0][1],            # column shift within the block index
            columns.bit_length() - 1,       # log2(columns per row)
            columns - 1,                    # column mask
            geometry.bank_capacity_bytes,
            self.mapper.partition.pim_base,
            mapping,
        )

    # ------------------------------------------------------------- addressing
    @property
    def partition(self):
        return self.mapper.partition

    def decode(self, phys_addr: int) -> Tuple[str, DramAddress]:
        return self.mapper.decode(phys_addr)

    def pim_heap_addr(self, pim_core_id: int, byte_offset: int) -> int:
        """Physical address of ``byte_offset`` in a PIM core's MRAM heap."""
        affine = self._heap_affine
        if affine is None:
            return pim_heap_physical_address(
                self.partition,
                self.mapper.mapping_for(PIM_DOMAIN),
                pim_core_id,
                byte_offset,
            )
        return self._heap_fast(affine, pim_core_id, byte_offset)[0]

    def _heap_fast(self, affine, pim_core_id: int, byte_offset: int):
        """(phys_addr, DramAddress) of a heap location via cached integer ops."""
        row_shift, col_shift, cols_log2, col_mask, bank_capacity, pim_base, mapping = affine
        cached = self._heap_core_base.get(pim_core_id)
        if cached is None:
            # Bounds-checks the core id and encodes its (channel, rank, bank
            # group, bank) home once; every later offset is pure integer math.
            home = pim_core_coordinates(mapping.geometry, pim_core_id)
            cached = (mapping.inverse(home) >> 6, home)
            self._heap_core_base[pim_core_id] = cached
        base, home = cached
        if not 0 <= byte_offset < bank_capacity:
            raise ValueError(
                f"heap offset {byte_offset:#x} outside the per-core MRAM of "
                f"{bank_capacity:#x} bytes"
            )
        block_index = byte_offset >> 6
        row = block_index >> cols_log2
        column = block_index & col_mask
        block = base | (row << row_shift) | (column << col_shift)
        phys = pim_base + (block << 6) + (byte_offset & 63)
        return phys, DramAddress(home[0], home[1], home[2], home[3], row, column)

    def pim_heap_request(self, pim_core_id: int, byte_offset: int):
        """``(phys_addr, domain, DramAddress)`` for a PIM-heap location.

        The pre-decoded form of :meth:`pim_heap_addr`: transfer engines that
        know the (core, offset) pair skip the physical-address round trip
        through the system mapper (the returned address equals
        ``decode(phys_addr)`` exactly, because the PIM mapping is invertible).
        """
        affine = self._heap_affine
        if affine is None:
            phys = pim_heap_physical_address(
                self.partition,
                self.mapper.mapping_for(PIM_DOMAIN),
                pim_core_id,
                byte_offset,
            )
            domain, dram_addr = self.mapper.decode(phys)
            return phys, domain, dram_addr
        phys, dram_addr = self._heap_fast(affine, pim_core_id, byte_offset)
        return phys, PIM_DOMAIN, dram_addr

    def pim_heap_addrs_batch(self, pim_core_ids, byte_offsets) -> np.ndarray:
        """Vectorized :meth:`pim_heap_addr` over parallel columns.

        Accepts equal-length sequences of core ids and byte offsets and
        returns the int64 physical-address column, element-for-element equal
        to calling :meth:`pim_heap_addr` in a loop.  On affine layouts the
        whole column is pure integer array math (per-core bases come from the
        same cache the scalar path fills); otherwise it falls back to the
        generic per-element walk.
        """
        cores = np.ascontiguousarray(pim_core_ids, dtype=np.int64)
        offsets = np.ascontiguousarray(byte_offsets, dtype=np.int64)
        n = cores.shape[0]
        if offsets.shape[0] != n:
            raise ValueError("pim_core_ids / byte_offsets length mismatch")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        affine = self._heap_affine
        if affine is None:
            mapping = self.mapper.mapping_for(PIM_DOMAIN)
            partition = self.partition
            return np.fromiter(
                (
                    pim_heap_physical_address(partition, mapping, core, offset)
                    for core, offset in zip(cores.tolist(), offsets.tolist())
                ),
                dtype=np.int64,
                count=n,
            )
        row_shift, col_shift, cols_log2, col_mask, bank_capacity, pim_base, mapping = affine
        low = int(offsets.min())
        high = int(offsets.max())
        if low < 0 or high >= bank_capacity:
            bad = low if low < 0 else high
            raise ValueError(
                f"heap offset {bad:#x} outside the per-core MRAM of "
                f"{bank_capacity:#x} bytes"
            )
        cache = self._heap_core_base
        unique = np.unique(cores)
        base_column = np.empty(unique.shape[0], dtype=np.int64)
        for index, core in enumerate(unique.tolist()):
            cached = cache.get(core)
            if cached is None:
                home = pim_core_coordinates(mapping.geometry, core)
                cached = (mapping.inverse(home) >> 6, home)
                cache[core] = cached
            base_column[index] = cached[0]
        bases = base_column[np.searchsorted(unique, cores)]
        block_index = offsets >> 6
        row = block_index >> cols_log2
        column = block_index & col_mask
        block = bases | (row << row_shift) | (column << col_shift)
        return pim_base + (block << 6) + (offsets & 63)

    def domain_system(self, domain: str) -> MemorySystem:
        if domain == DRAM_DOMAIN:
            return self.dram
        if domain == PIM_DOMAIN:
            return self.pim
        raise ValueError(f"unknown domain '{domain}'")

    # ---------------------------------------------------------------- traffic
    def submit(self, request: MemoryRequest) -> bool:
        """Decode and route a request; returns False if the target queue is full.

        Requests that already carry a decoded ``domain``/``dram_addr`` (because
        the caller pre-decoded them, e.g. the DCE's scheduler) are routed as-is.
        """
        dram_addr = request.dram_addr
        if request.domain is None or dram_addr is None:
            domain, dram_addr = self.mapper.decode(request.phys_addr)
            request.domain = domain
            request.dram_addr = dram_addr
        if self._fabric is not None:
            return self._fabric.inject(request)
        accepted = self._domain_controllers[request.domain][
            dram_addr.channel
        ].enqueue(request)
        if accepted and self._trace_hooks:
            for hook in self._trace_hooks:
                hook(request, self.engine.now)
        return accepted

    def submit_prepared(
        self, request: MemoryRequest, bank_key: int, row: int
    ) -> bool:
        """:meth:`submit` for a pre-decoded request with ``(bank_key, row)`` known.

        The caller guarantees ``request.domain`` / ``request.dram_addr`` are
        already set and supplies the flat bank key and row it computed
        column-wise (the burst transfer pump pre-decodes whole schedule
        columns up front).  Dispatch, admission and trace hooks match
        :meth:`submit` exactly; only the per-request key derivation is
        skipped.
        """
        if self._fabric is not None:
            return self._fabric.inject(request, bank_key, row)
        accepted = self._domain_controllers[request.domain][
            request.dram_addr.channel
        ].enqueue_prepared(request, bank_key, row)
        if accepted and self._trace_hooks:
            for hook in self._trace_hooks:
                hook(request, self.engine.now)
        return accepted

    def submit_burst(self, burst) -> Tuple[int, List[MemoryRequest]]:
        """Decode and route a whole :class:`RequestBurst` in one vectorized pass.

        The burst's address column is domain-dispatched and decoded through
        the compiled batch decoder (:meth:`BitFieldMapping.map_batch`), flat
        bank keys are computed column-wise, and per-request objects are then
        materialized in submission order from plain-int fields.  Admission
        stops at the first rejected request, exactly like submitting one at a
        time and breaking on the first ``False``.

        Returns ``(accepted, requests)`` where ``requests`` holds the
        materialized objects up to *and including* the first rejected one
        (``len(requests) == accepted`` when everything was admitted) -- the
        caller parks the rejected object for retry, preserving the
        park-and-retry idiom's object identity.  Event-level behaviour is
        bit-identical to the scalar :meth:`submit` loop; the differential
        suite asserts it.
        """
        addrs = burst.phys_addrs
        n = addrs.shape[0]
        if n == 0:
            return 0, []
        mapper = self.mapper
        pim_base = mapper.partition.pim_base
        pim_mask = addrs >= pim_base
        npim = int(pim_mask.sum())
        if npim == 0:
            cols = mapper.mapping_for(DRAM_DOMAIN).map_batch(addrs)
            ref = self.dram.controllers[0].channel
            bank_keys = (
                cols.rank * ref._banks_per_rank
                + cols.bankgroup * ref._banks_per_group
                + cols.bank
            )
            domains = None
            single_domain = DRAM_DOMAIN
        elif npim == n:
            cols = mapper.mapping_for(PIM_DOMAIN).map_batch(addrs - pim_base)
            ref = self.pim.controllers[0].channel
            bank_keys = (
                cols.rank * ref._banks_per_rank
                + cols.bankgroup * ref._banks_per_group
                + cols.bank
            )
            domains = None
            single_domain = PIM_DOMAIN
        else:
            dram_mask = ~pim_mask
            dram_cols = mapper.mapping_for(DRAM_DOMAIN).map_batch(addrs[dram_mask])
            pim_cols = mapper.mapping_for(PIM_DOMAIN).map_batch(
                addrs[pim_mask] - pim_base
            )
            dram_ref = self.dram.controllers[0].channel
            pim_ref = self.pim.controllers[0].channel
            merged = []
            for dram_col, pim_col in zip(dram_cols, pim_cols):
                out = np.empty(n, dtype=np.int64)
                out[dram_mask] = dram_col
                out[pim_mask] = pim_col
                merged.append(out)
            cols = type(dram_cols)(*merged)
            bank_keys = np.empty(n, dtype=np.int64)
            bank_keys[dram_mask] = (
                dram_cols.rank * dram_ref._banks_per_rank
                + dram_cols.bankgroup * dram_ref._banks_per_group
                + dram_cols.bank
            )
            bank_keys[pim_mask] = (
                pim_cols.rank * pim_ref._banks_per_rank
                + pim_cols.bankgroup * pim_ref._banks_per_group
                + pim_cols.bank
            )
            domains = [
                PIM_DOMAIN if flag else DRAM_DOMAIN for flag in pim_mask.tolist()
            ]
            single_domain = None

        # Batch-convert every column to plain Python ints once (``tolist`` is
        # far cheaper than per-element numpy indexing, and keeps np.int64 out
        # of request fields and serialized results).
        channels = cols.channel.tolist()
        ranks = cols.rank.tolist()
        bankgroups = cols.bankgroup.tolist()
        banks = cols.bank.tolist()
        rows = cols.row.tolist()
        columns = cols.column.tolist()
        keys = bank_keys.tolist()
        addrs_l = addrs.tolist()
        writes = burst.is_write.tolist()
        sizes = burst.sizes.tolist()
        codes = burst.tenant_codes.tolist()
        table = burst.tenant_table
        stream = burst.stream
        source_id = burst.source_id
        on_complete = burst.on_complete
        cores = getattr(burst, "pim_core_ids", None)
        if cores is None or isinstance(cores, int):
            core_scalar, core_list = cores, None
        else:
            core_scalar, core_list = None, cores.tolist()
        controllers_by_domain = self._domain_controllers
        trace_hooks = self._trace_hooks
        fabric = self._fabric
        now = self.engine.now

        requests: List[MemoryRequest] = []
        accepted = 0
        for i in range(n):
            domain = single_domain if domains is None else domains[i]
            request = MemoryRequest(
                phys_addr=addrs_l[i],
                is_write=writes[i],
                size_bytes=sizes[i],
                stream=stream,
                source_id=source_id,
                pim_core_id=core_scalar if core_list is None else core_list[i],
                tenant=table[codes[i]],
                on_complete=on_complete,
            )
            request.domain = domain
            request.dram_addr = DramAddress(
                channels[i], ranks[i], bankgroups[i], banks[i], rows[i], columns[i]
            )
            requests.append(request)
            if fabric is not None:
                # X-Y routes are deterministic, so the hop count is known at
                # injection time; trace hooks fire at delivery instead.
                burst.fabric_hops[i] = fabric.planned_hops(request)
                if not fabric.inject(request, keys[i], rows[i]):
                    break
                accepted += 1
                continue
            controller = controllers_by_domain[domain][channels[i]]
            if not controller.enqueue_prepared(request, keys[i], rows[i]):
                break
            accepted += 1
            if trace_hooks:
                for hook in trace_hooks:
                    hook(request, now)
        if accepted:
            # Integer picoseconds: the engine's full fixed-point tick value
            # (62 fractional bits) does not fit an int64 column.
            burst.arrival_ticks[:accepted] = self.engine.now_ps
        return accepted, requests

    def attach_trace_hook(
        self, hook: Callable[[MemoryRequest, float], None]
    ) -> "TraceHookHandle":
        """Observe every accepted memory request (used by the trace recorder).

        The hook fires synchronously after a request is accepted into a
        controller queue, with ``(request, submit_time_ns)``.  Hooks must not
        mutate the request; they exist purely for capture.

        Returns a :class:`TraceHookHandle` whose :meth:`~TraceHookHandle.detach`
        removes the hook again; detaching is idempotent.
        """
        self._trace_hooks.append(hook)
        return TraceHookHandle(self, hook)

    def detach_trace_hook(
        self, hook: Callable[[MemoryRequest, float], None]
    ) -> None:
        """Remove a hook registered with :meth:`attach_trace_hook`.

        Idempotent: detaching a hook that is not (or no longer) attached is a
        no-op, so teardown paths that run more than once stay raise-free.
        """
        try:
            self._trace_hooks.remove(hook)
        except ValueError:
            pass

    def retry_when_possible(
        self, request: MemoryRequest, callback: Callable[[], None]
    ) -> None:
        """Register ``callback`` to fire when the request's target queue has room."""
        if request.domain is None or request.dram_addr is None:
            domain, dram_addr = self.decode(request.phys_addr)
            request.domain = domain
            request.dram_addr = dram_addr
        if self._fabric is not None:
            self._fabric.add_slot_listener(request, callback)
            return
        self.domain_system(request.domain).add_slot_listener(request, callback)

    # ----------------------------------------------------- fabric integration
    def _fabric_deliver(
        self, request: MemoryRequest, bank_key=None, row=None
    ) -> bool:
        """Admit a fabric-delivered request into its channel controller.

        This is the back half of the direct submit path: controller admission
        plus the trace hooks, which observe *accepted* requests and therefore
        fire at delivery time (not injection time) under a fabric.  Returns
        ``False`` when the controller queue is full, in which case the fabric
        keeps holding its last buffer slot and parks the delivery via
        :meth:`_fabric_park_delivery` -- backpressure into the mesh.
        """
        if bank_key is None:
            accepted = self._domain_controllers[request.domain][
                request.dram_addr.channel
            ].enqueue(request)
        else:
            accepted = self._domain_controllers[request.domain][
                request.dram_addr.channel
            ].enqueue_prepared(request, bank_key, row)
        if accepted and self._trace_hooks:
            for hook in self._trace_hooks:
                hook(request, self.engine.now)
        return accepted

    def _fabric_park_delivery(
        self, request: MemoryRequest, callback: Callable[[], None]
    ) -> None:
        """Re-attempt a parked fabric delivery when the controller drains."""
        self.domain_system(request.domain).add_slot_listener(request, callback)

    # ------------------------------------------------------------- simulation
    @property
    def now(self) -> float:
        return self.engine.now

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        return self.engine.run(until=until, max_events=max_events)

    def is_memory_idle(self) -> bool:
        if self._fabric is not None and not self._fabric.is_idle():
            return False
        return self.dram.is_idle() and self.pim.is_idle()

    def reset_state(self) -> None:
        """Return the quiesced system to its just-built state.

        Rewinds the simulation clock to 0 ns and resets every component that
        carries absolute timestamps or run-local state: channel controllers
        (open rows, CAS history, refresh deadlines), the OS scheduler's run
        queue, CPU busy-interval accounting, the LLC and the stats registry.
        Pending simulation events are discarded (the memory systems must be
        idle -- resetting mid-transfer raises).

        A run started after ``reset_state`` is bit-identical to the same run
        on a freshly built system, which is how :class:`repro.api.Session`
        isolates consecutive runs without paying system construction again.
        Trace hooks survive the reset: they are observer wiring, not run state.
        """
        if not self.is_memory_idle():
            raise RuntimeError("cannot reset a system with memory requests in flight")
        self.scheduler.reset()
        self.engine.reset()
        self.dram.reset()
        self.pim.reset()
        self.cpu.reset()
        self.llc.reset()
        if self._fabric is not None:
            self._fabric.reset()
        self.stats.reset()


def build_mapper(
    config: SystemConfig, design_point: DesignPoint
) -> SystemAddressMapper:
    """Select the system mapper implied by a design point.

    The baseline and the vanilla-DCE design point (Base+D) keep today's
    homogeneous locality-centric mapping; Base+D+H and the full PIM-MMU use
    HetMap.
    """
    if design_point.uses_hetmap:
        return HeterogeneousMapper.build(config.dram, config.pim)
    return HomogeneousMapper.build(config.dram, config.pim)


def build_system(
    config: Optional[SystemConfig] = None,
    design_point: DesignPoint = DesignPoint.BASELINE,
    engine: Optional[SimulationEngine] = None,
    stats: Optional[StatsRegistry] = None,
) -> PimSystem:
    """Build a :class:`PimSystem` for a Figure 15 design point (Table I defaults)."""
    config = config if config is not None else SystemConfig.paper_baseline()
    mapper = build_mapper(config, design_point)
    return PimSystem(
        config=config,
        mapper=mapper,
        design_point=design_point,
        engine=engine,
        stats=stats,
    )


__all__ = ["PimSystem", "TraceHookHandle", "build_mapper", "build_system"]
