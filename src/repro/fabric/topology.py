"""Abstract interconnect topology interposed between engines and memory.

A :class:`Topology` sits between :class:`repro.system.PimSystem`'s submit
entry points and the per-channel controllers.  ``fabric="none"`` (the
default) builds **no** topology object at all -- the system keeps its direct
controller dispatch, which is how the pass-through stays bit-identical to
the pre-fabric hot path by construction.  Any other fabric receives every
decoded request through :meth:`Topology.inject` and is responsible for
eventually delivering it to its target controller through the system's
delivery callback.

The contract mirrors the controllers' park-and-retry idiom exactly:

* :meth:`inject` returns ``False`` when the fabric cannot accept the request
  right now (no injection credit); the caller parks the request and
  registers a retry via :meth:`add_slot_listener`, which must fire its
  callbacks one-shot when injection capacity frees up.
* Delivery happens at simulated time: the fabric schedules hops on the
  system's engine and calls back into the system when a request reaches its
  endpoint, where the normal controller admission (and trace hooks) run.
"""

from __future__ import annotations

from typing import Callable

from repro.memctrl.request import MemoryRequest


class Topology:
    """Base class for pluggable interconnect fabrics (see ``repro variants``)."""

    #: Registry key (set on registration).
    name: str = "abstract"

    def inject(
        self, request: MemoryRequest, bank_key=None, row=None
    ) -> bool:
        """Accept a decoded request into the fabric; ``False`` = no capacity.

        ``bank_key``/``row`` carry the pre-computed controller coordinates of
        the burst admission path (:meth:`PimSystem.submit_burst`); they ride
        along with the request and are handed back to the controller at
        delivery so the prepared fast path survives the fabric crossing.
        """
        raise NotImplementedError

    def add_slot_listener(
        self, request: MemoryRequest, callback: Callable[[], None]
    ) -> None:
        """One-shot callback fired when the request's injection port frees up."""
        raise NotImplementedError

    def planned_hops(self, request: MemoryRequest) -> int:
        """Hops the (deterministic) route for ``request`` will take."""
        return 0

    def is_idle(self) -> bool:
        """Whether no request is in flight inside the fabric."""
        return True

    def reset(self) -> None:
        """Forget all in-flight state (power-on reset; fabric must be idle)."""


__all__ = ["Topology"]
