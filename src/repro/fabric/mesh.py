"""2-D mesh interconnect: slotted routers, X-Y routing, credit flow control.

The mesh places every traffic endpoint on a ``width x height`` grid of
router nodes, row-major: first the ingress node(s) (hosts and the DCE inject
here), then one node per DRAM channel controller, then one per PIM channel
controller.  A request decoded to ``(domain, channel)`` is carried from its
ingress node to the channel's node in fixed-latency hops under deterministic
dimension-ordered X-Y routing (all X movement first, then Y), which is
provably deadlock-free on a mesh -- the only cycles in the channel
dependency graph would need a Y->X turn that X-Y routing never makes.

Flow control is credit-based, one credit pool per directed link: a flit
(one request) occupies a downstream buffer slot for the whole time it sits
on or waits at that link, and the credit returns upstream only when the
flit moves on (or is delivered into a controller queue).  Backpressure
therefore propagates hop by hop all the way to the injection port, where
``inject`` returns ``False`` and the producer parks -- the same
park-and-retry contract the channel controllers use, so every existing
engine works against a meshed system unchanged.

Per-link flit/stall counters, hop counters and a queueing-delay histogram
land in the run's :class:`~repro.sim.stats.StatsRegistry` under
``fabric/...`` names and travel inside every ``RunResult`` snapshot.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.fabric.topology import Topology
from repro.memctrl.request import MemoryRequest

Coord = Tuple[int, int]


class _Flit:
    """One request crossing the mesh (plus its prepared-path coordinates)."""

    __slots__ = ("request", "bank_key", "row", "dest", "coord", "link", "hops", "inject_ns")

    def __init__(self, request, bank_key, row, dest, coord, link, inject_ns) -> None:
        self.request = request
        self.bank_key = bank_key
        self.row = row
        self.dest = dest
        self.coord = coord
        self.link = link
        self.hops = 0
        self.inject_ns = inject_ns


class _Link:
    """One directed router-to-router link with a credit pool."""

    __slots__ = ("src", "dst", "credits", "capacity", "waiting", "listeners", "flits", "stalls")

    def __init__(self, src: Coord, dst: Coord, capacity: int, flits, stalls) -> None:
        self.src = src
        self.dst = dst
        self.credits = capacity
        self.capacity = capacity
        #: Flits parked at ``src`` waiting for a credit on this link (FIFO).
        self.waiting: deque = deque()
        #: One-shot injection listeners (producers parked at ``src``).
        self.listeners: List[Callable[[], None]] = []
        self.flits = flits
        self.stalls = stalls


class MeshTopology(Topology):
    """Credit-flow-controlled 2-D mesh between engines and channel controllers."""

    name = "mesh"

    def __init__(
        self,
        system,
        width: int,
        height: int,
        hop_latency_ns: float = 2.0,
        link_credits: int = 4,
        num_ingress: int = 1,
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"mesh grid must be at least 1x1, got {width}x{height}")
        if link_credits < 1:
            raise ValueError(f"mesh link credits must be >= 1, got {link_credits}")
        if num_ingress < 1:
            raise ValueError(f"mesh needs at least one ingress node, got {num_ingress}")
        dram_channels = system.config.dram.channels
        pim_channels = system.config.pim.channels
        endpoints = num_ingress + dram_channels + pim_channels
        if endpoints > width * height:
            raise ValueError(
                f"mesh {width}x{height} has {width * height} nodes but the system "
                f"needs {endpoints} ({num_ingress} ingress + {dram_channels} dram "
                f"+ {pim_channels} pim channel endpoints); use a larger grid"
            )
        self.width = width
        self.height = height
        self.hop_latency_ns = hop_latency_ns
        self.link_credits = link_credits
        self.engine = system.engine
        self.stats = system.stats
        self._deliver = system._fabric_deliver
        self._park_delivery = system._fabric_park_delivery

        # Row-major endpoint placement: ingress nodes first, then DRAM
        # channels, then PIM channels.  Deterministic, so routes (and the
        # per-request hop counts) are a pure function of the config.
        self._ingress: List[Coord] = [self._coord(i) for i in range(num_ingress)]
        self._endpoint: Dict[Tuple[str, int], Coord] = {}
        offset = num_ingress
        for channel in range(dram_channels):
            self._endpoint[("dram", channel)] = self._coord(offset + channel)
        offset += dram_channels
        for channel in range(pim_channels):
            self._endpoint[("pim", channel)] = self._coord(offset + channel)

        self._links: Dict[Tuple[Coord, Coord], _Link] = {}
        stats = self.stats
        for y in range(height):
            for x in range(width):
                for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                    if 0 <= nx < width and 0 <= ny < height:
                        src, dst = (x, y), (nx, ny)
                        label = f"fabric/link/{x},{y}->{nx},{ny}"
                        self._links[(src, dst)] = _Link(
                            src,
                            dst,
                            link_credits,
                            stats.counter(f"{label}/flits"),
                            stats.counter(f"{label}/stalls"),
                        )
        self._injected = stats.counter("fabric/injected")
        self._delivered = stats.counter("fabric/delivered")
        self._hops = stats.counter("fabric/hops")
        self._wait_hist = stats.histogram("fabric/wait_ns")
        self._in_flight = 0

    # ------------------------------------------------------------- placement
    def _coord(self, index: int) -> Coord:
        return (index % self.width, index // self.width)

    def ingress_coord(self, source_id: int) -> Coord:
        """The grid node requests from ``source_id`` inject at."""
        return self._ingress[source_id % len(self._ingress)]

    def endpoint_coord(self, domain: str, channel: int) -> Coord:
        """The grid node hosting one channel controller's endpoint."""
        return self._endpoint[(domain, channel)]

    @staticmethod
    def hop_distance(src: Coord, dest: Coord) -> int:
        """Manhattan distance -- the exact hop count of the X-Y route."""
        return abs(src[0] - dest[0]) + abs(src[1] - dest[1])

    @staticmethod
    def _next_hop(coord: Coord, dest: Coord) -> Coord:
        x, y = coord
        if x < dest[0]:
            return (x + 1, y)
        if x > dest[0]:
            return (x - 1, y)
        if y < dest[1]:
            return (x, y + 1)
        return (x, y - 1)

    def planned_hops(self, request: MemoryRequest) -> int:
        return self.hop_distance(
            self.ingress_coord(request.source_id),
            self._endpoint[(request.domain, request.dram_addr.channel)],
        )

    # ---------------------------------------------------------------- traffic
    def inject(self, request: MemoryRequest, bank_key=None, row=None) -> bool:
        """Consume the first-hop credit and start the request across the mesh."""
        src = self._ingress[request.source_id % len(self._ingress)]
        dest = self._endpoint[(request.domain, request.dram_addr.channel)]
        now = self.engine.now
        if src == dest:
            # Degenerate placement (1x1 grids in tests): deliver in place.
            flit = _Flit(request, bank_key, row, dest, src, None, now)
            self._in_flight += 1
            self._injected.add(1)
            self._try_deliver(flit)
            return True
        link = self._links[(src, self._next_hop(src, dest))]
        if link.credits == 0:
            link.stalls.add(1)
            return False
        link.credits -= 1
        link.flits.add(1)
        flit = _Flit(request, bank_key, row, dest, src, link, now)
        self._in_flight += 1
        self._injected.add(1)
        self.engine.schedule_callback(
            now + self.hop_latency_ns, partial(self._arrive, flit)
        )
        return True

    def add_slot_listener(
        self, request: MemoryRequest, callback: Callable[[], None]
    ) -> None:
        """Park a producer on the request's first-hop link until a credit frees."""
        src = self._ingress[request.source_id % len(self._ingress)]
        dest = self._endpoint[(request.domain, request.dram_addr.channel)]
        if src == dest:
            # inject() never fails on the degenerate route; fire on the next
            # engine step so the producer retries in event order.
            self.engine.schedule_callback(self.engine.now, callback)
            return
        self._links[(src, self._next_hop(src, dest))].listeners.append(callback)

    # ------------------------------------------------------------ flit motion
    def _arrive(self, flit: _Flit) -> None:
        flit.coord = flit.link.dst
        flit.hops += 1
        self._advance(flit)

    def _advance(self, flit: _Flit) -> None:
        if flit.coord == flit.dest:
            self._try_deliver(flit)
            return
        next_link = self._links[(flit.coord, self._next_hop(flit.coord, flit.dest))]
        if next_link.credits > 0:
            self._forward(flit, next_link)
        else:
            # Hold the current buffer slot; the credit-return of next_link
            # will pick this flit up FIFO.  Head-of-line blocking is the
            # modelled behaviour of a slotted router.
            next_link.stalls.add(1)
            next_link.waiting.append(flit)

    def _forward(self, flit: _Flit, next_link: _Link) -> None:
        next_link.credits -= 1
        next_link.flits.add(1)
        released = flit.link
        flit.link = next_link
        self.engine.schedule_callback(
            self.engine.now + self.hop_latency_ns, partial(self._arrive, flit)
        )
        if released is not None:
            self._release(released)

    def _try_deliver(self, flit: _Flit) -> None:
        if self._deliver(flit.request, flit.bank_key, flit.row):
            self._finish(flit)
        else:
            # Target controller queue is full: keep holding the last buffer
            # slot (backpressure into the mesh) and retry when the controller
            # drains a slot -- the same one-shot listener idiom producers use.
            self._park_delivery(flit.request, partial(self._try_deliver, flit))

    def _finish(self, flit: _Flit) -> None:
        request = flit.request
        now = self.engine.now
        request.fabric_hops = flit.hops
        wait_ns = (now - flit.inject_ns) - flit.hops * self.hop_latency_ns
        # Engine times are tick-quantized floats; an uncontended route can
        # come out a few ulps below zero.  Queueing delay is never negative.
        request.fabric_wait_ns = wait_ns if wait_ns > 0.0 else 0.0
        # Latency histograms (controller and per-tenant) measure from
        # ``arrival_ns``; re-stamp it to the injection time so observed
        # latency is end-to-end (fabric traversal + queueing + service),
        # not admission-to-completion.  The direct path never runs this.
        request.arrival_ns = flit.inject_ns
        self._delivered.add(1)
        self._hops.add(flit.hops)
        self._wait_hist.add(request.fabric_wait_ns)
        self._in_flight -= 1
        if flit.link is not None:
            self._release(flit.link)

    def _release(self, link: _Link) -> None:
        """Return one credit; wake the next waiting flit or parked producers."""
        link.credits += 1
        if link.waiting:
            # FIFO across the link preserves per-link ordering (the deque
            # rotation proof from the burst pump: admission order equals
            # submission order as long as every wait queue is FIFO).
            self._forward(link.waiting.popleft(), link)
            return
        if link.listeners:
            listeners, link.listeners = link.listeners, []
            for callback in listeners:
                callback()

    # ------------------------------------------------------------- lifecycle
    @property
    def in_flight(self) -> int:
        return self._in_flight

    def is_idle(self) -> bool:
        return self._in_flight == 0

    def reset(self) -> None:
        if self._in_flight:
            raise RuntimeError("cannot reset a mesh fabric with flits in flight")
        for link in self._links.values():
            link.credits = link.capacity
            link.waiting.clear()
            link.listeners.clear()

    def check_invariants(self) -> None:
        """Assert credit conservation (used by the differential suite)."""
        for link in self._links.values():
            if not 0 <= link.credits <= link.capacity:
                raise AssertionError(
                    f"link {link.src}->{link.dst} credits {link.credits} outside "
                    f"[0, {link.capacity}]"
                )
        if self._in_flight < 0:
            raise AssertionError(f"negative in-flight count {self._in_flight}")


__all__ = ["MeshTopology"]
