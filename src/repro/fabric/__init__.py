"""``repro.fabric`` -- pluggable interconnect fabrics behind a variant registry.

The fabric axis selects what sits between the traffic engines and the
per-channel memory controllers (see :mod:`repro.fabric.topology`):

* ``"none"`` (default) -- **no** fabric object at all: requests go straight
  to their channel controller, exactly the pre-fabric hot path.  The
  pass-through is bit-identical by construction (nothing is interposed) and
  the committed ``results/`` byte-compares enforce it.
* ``"mesh:WxH"`` -- a 2-D mesh of slotted routers with per-hop pipeline
  latency and credit-based flow control
  (:class:`~repro.fabric.mesh.MeshTopology`).  Optional typed arguments:
  ``mesh:4x4,hop_ns=2.0,credits=4,ingress=1``.

Specs live in :data:`MemCtrlConfig.fabric
<repro.sim.config.MemCtrlConfig.fabric>` and thread through
:class:`repro.registry.Variants`, the Session facade, experiment specs and
the CLI (``--fabric``); ``repro variants`` lists the registered fabrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.fabric.mesh import MeshTopology
from repro.fabric.topology import Topology
from repro.registry import VariantRegistry, parse_typed_kv

#: The fabric variant registry (``repro variants`` lists it).
FABRICS = VariantRegistry(
    "fabric",
    error=ValueError,
    known_label="available",
    dup_label="fabric",
)


@dataclass(frozen=True)
class MeshBuilder:
    """Parsed ``mesh:WxH[,key=val...]`` spec, buildable against any system."""

    width: int
    height: int
    hop_ns: float = 2.0
    credits: int = 4
    ingress: int = 1

    @classmethod
    def parse(cls, args: Optional[str]) -> "MeshBuilder":
        if not args:
            raise ValueError(
                "fabric 'mesh' needs a grid size, e.g. 'mesh:4x4' "
                "(optional: ,hop_ns=<float>,credits=<int>,ingress=<int>)"
            )
        head, _, rest = args.partition(",")
        size_w, sep, size_h = head.partition("x")
        try:
            if not sep:
                raise ValueError
            width, height = int(size_w), int(size_h)
        except ValueError:
            raise ValueError(
                f"cannot parse mesh grid size {head!r}; expected '<W>x<H>', "
                "e.g. 'mesh:4x4'"
            ) from None
        kv = parse_typed_kv(
            rest if rest else None,
            {"hop_ns": float, "credits": int, "ingress": int},
            "mesh",
        )
        return cls(width=width, height=height, **kv)

    def build(self, system) -> MeshTopology:
        return MeshTopology(
            system,
            width=self.width,
            height=self.height,
            hop_latency_ns=self.hop_ns,
            link_credits=self.credits,
            num_ingress=self.ingress,
        )


def _none_builder(args: Optional[str]) -> None:
    if args:
        raise ValueError(f"fabric 'none' takes no arguments, got {args!r}")
    return None


FABRICS.register(
    "none",
    _none_builder,
    "direct submit, zero overhead: no fabric object is built (default)",
)
FABRICS.register(
    "mesh",
    MeshBuilder.parse,
    "2-D mesh NoC (mesh:WxH[,hop_ns=F,credits=N,ingress=N]): X-Y routing, "
    "per-hop latency, credit-based flow control",
)


def register_fabric(name: str, builder, description: str = "") -> None:
    """Register a fabric spec builder (``builder(args) -> Optional[builder]``)."""
    FABRICS.register(name, builder, description)


def available_fabrics() -> Tuple[str, ...]:
    """Registered fabric names, in registration order (``none`` first)."""
    return tuple(FABRICS.names())


def fabric_description(name: str) -> str:
    return FABRICS.description(name)


def validate_fabric(spec: str) -> str:
    """Fail fast on an unknown/malformed fabric spec; returns it unchanged."""
    FABRICS.create(spec)  # parses grid/typed args too, not just the name
    return spec


def create_fabric(spec: str, system) -> Optional[Topology]:
    """Build the fabric a spec describes against ``system`` (``None`` = direct)."""
    builder = FABRICS.create(spec)
    if builder is None:
        return None
    return builder.build(system)


__all__ = [
    "FABRICS",
    "MeshBuilder",
    "MeshTopology",
    "Topology",
    "available_fabrics",
    "create_fabric",
    "fabric_description",
    "register_fabric",
    "validate_fabric",
]
