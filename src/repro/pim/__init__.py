"""UPMEM-like PIM device model (paper §II-C).

The PIM device is modelled at the level the paper's evaluation needs:

* :mod:`repro.pim.topology` -- the DIMM/chip/bank/DPU topology and the mapping
  between PIM core ids and their home bank.
* :mod:`repro.pim.mram` -- per-DPU MRAM storage used for functional
  verification of transfers in tests and examples.
* :mod:`repro.pim.transpose` -- the 8x8 byte transpose the runtime must apply
  because a data word is striped one byte per chip across the DIMM (Figure 3).
* :mod:`repro.pim.dpu` and :mod:`repro.pim.kernel` -- an analytical DPU
  execution model (tasklet pipeline + MRAM bandwidth roofline) substituting
  for the paper's wall-clock kernel-time measurements on real hardware.
"""

from repro.pim.dpu import DpuCore, DpuState
from repro.pim.kernel import KernelProfile, estimate_kernel_time_ns
from repro.pim.mram import Mram
from repro.pim.topology import PimTopology
from repro.pim.transpose import transpose_for_pim, transpose_from_pim

__all__ = [
    "DpuCore",
    "DpuState",
    "KernelProfile",
    "Mram",
    "PimTopology",
    "estimate_kernel_time_ns",
    "transpose_for_pim",
    "transpose_from_pim",
]
