"""Chip-interleaving byte transpose (Figure 3).

A DDR4 DIMM stripes every 8-byte data word one byte per chip.  Because each
UPMEM DPU lives inside a single chip, a DPU would only ever see one byte of
each word unless the host first transposes the data: the runtime reshapes each
64-byte tile into an 8x8 byte matrix and transposes it, so that after chip
striping every DPU receives full 8-byte words.  The baseline runtime performs
this transpose on the CPU (part of its per-chunk cost); PIM-MMU's DCE performs
it on the fly in its preprocessing unit.

Both directions are exposed; ``transpose_from_pim(transpose_for_pim(x)) == x``
for any multiple-of-64-bytes payload, which the test suite checks with
hypothesis.
"""

from __future__ import annotations

import numpy as np

TILE_BYTES = 64
WORD_BYTES = 8


def _check_payload(data: bytes) -> None:
    if len(data) % TILE_BYTES != 0:
        raise ValueError(
            f"payload length {len(data)} must be a multiple of {TILE_BYTES} bytes"
        )


def transpose_for_pim(data: bytes) -> bytes:
    """Transpose host-ordered data into the chip-striped layout PIM expects."""
    _check_payload(data)
    if not data:
        return b""
    array = np.frombuffer(data, dtype=np.uint8)
    tiles = array.reshape(-1, WORD_BYTES, WORD_BYTES)
    return tiles.transpose(0, 2, 1).tobytes()


def transpose_from_pim(data: bytes) -> bytes:
    """Inverse transpose applied when results travel PIM -> DRAM.

    The 8x8 transpose is an involution, so both directions perform the same
    permutation; the separate name documents intent at call sites.
    """
    return transpose_for_pim(data)


def is_transposed_pair(host_data: bytes, pim_data: bytes) -> bool:
    """True if ``pim_data`` is exactly the chip-striped image of ``host_data``."""
    return transpose_for_pim(host_data) == pim_data


__all__ = ["TILE_BYTES", "WORD_BYTES", "is_transposed_pair", "transpose_for_pim", "transpose_from_pim"]
