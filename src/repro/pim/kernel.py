"""Analytical DPU kernel execution model.

The paper measures PIM kernel execution time on a real UPMEM server and only
simulates the DRAM<->PIM transfers (§V, "hybrid evaluation methodology").  We
do not have the hardware, so kernel time comes from a two-roofline model per
DPU: the kernel is either bound by the DPU pipeline (instructions / IPC) or by
its MRAM streaming bandwidth (~1 GB/s per DPU), whichever is slower.  All DPUs
execute the same SPMD program on equal-sized partitions, so the kernel time of
the slowest (i.e. any) DPU is the PIM phase of the end-to-end runtime.

The PrIM workload descriptors (:mod:`repro.workloads.prim`) additionally carry
a calibrated kernel-time fraction taken from the paper's Figure 16 breakdown;
the Figure 16 benchmark uses those fractions, while examples and the ablation
studies use this analytical model directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.dpu import DpuCore


@dataclass(frozen=True)
class KernelProfile:
    """Per-byte cost profile of one PIM kernel.

    ``instructions_per_byte`` captures the arithmetic intensity of the kernel
    on the DPU (UPMEM DPUs retire roughly one instruction per cycle once all
    tasklets are busy); ``mram_bytes_per_input_byte`` captures how many MRAM
    bytes are streamed per input byte (e.g. >1 for multi-pass kernels).
    """

    name: str
    instructions_per_byte: float
    mram_bytes_per_input_byte: float = 1.0
    fixed_overhead_ns: float = 20_000.0

    def __post_init__(self) -> None:
        if self.instructions_per_byte < 0 or self.mram_bytes_per_input_byte < 0:
            raise ValueError("kernel profile costs must be non-negative")


def estimate_kernel_time_ns(
    dpu: DpuCore, bytes_per_dpu: int, profile: KernelProfile
) -> float:
    """Roofline kernel time for one DPU processing ``bytes_per_dpu`` of input."""
    if bytes_per_dpu < 0:
        raise ValueError("bytes_per_dpu must be non-negative")
    compute_ns = dpu.compute_time_ns(
        int(bytes_per_dpu * profile.instructions_per_byte)
    )
    mram_ns = dpu.mram_stream_time_ns(
        int(bytes_per_dpu * profile.mram_bytes_per_input_byte)
    )
    return profile.fixed_overhead_ns + max(compute_ns, mram_ns)


__all__ = ["KernelProfile", "estimate_kernel_time_ns"]
