"""DPU (PIM core) model.

A DPU is UPMEM's in-order multithreaded RISC core: 24 hardware tasklets, a
14-stage pipeline clocked at ~350 MHz, a 64 KB WRAM scratchpad and a 64 MB
MRAM bank it can stream at roughly 1 GB/s (§II-C).  The reproduction models a
DPU analytically -- pipeline-throughput and MRAM-bandwidth rooflines -- which
substitutes for the paper's wall-clock measurements of kernel execution on a
real UPMEM server (the paper itself never simulates DPU internals either).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.pim.mram import Mram


class DpuState(enum.Enum):
    """Coarse execution state of a DPU.

    The host may only access a DPU's MRAM while the DPU is idle (Figure 2b/2c)
    -- the transfer engines assert this before touching the PIM address space.
    """

    IDLE = "idle"
    RUNNING = "running"


@dataclass
class DpuCore:
    """One bank-level PIM core and its MRAM."""

    dpu_id: int
    mram_capacity_bytes: int = 64 * 1024 * 1024
    wram_capacity_bytes: int = 64 * 1024
    frequency_mhz: float = 350.0
    num_tasklets: int = 24
    pipeline_depth: int = 14
    mram_bandwidth_gbps: float = 1.0
    state: DpuState = DpuState.IDLE
    mram: Mram = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mram is None:
            self.mram = Mram(capacity_bytes=self.mram_capacity_bytes)

    @property
    def is_idle(self) -> bool:
        return self.state is DpuState.IDLE

    def launch(self) -> None:
        """Mark the DPU as executing a kernel; host MRAM access becomes illegal."""
        if self.state is DpuState.RUNNING:
            raise RuntimeError(f"DPU {self.dpu_id} is already running")
        self.state = DpuState.RUNNING

    def finish(self) -> None:
        """Mark the kernel as complete; the host may access MRAM again."""
        self.state = DpuState.IDLE

    def host_write(self, offset: int, data: bytes) -> None:
        """Host-side MRAM write; only legal while the DPU is idle."""
        self._check_host_access()
        self.mram.write(offset, data)

    def host_read(self, offset: int, length: int) -> bytes:
        """Host-side MRAM read; only legal while the DPU is idle."""
        self._check_host_access()
        return self.mram.read(offset, length)

    def _check_host_access(self) -> None:
        if not self.is_idle:
            raise RuntimeError(
                f"host access to DPU {self.dpu_id} MRAM while the PIM core is active "
                "(structural hazard, Figure 2a)"
            )

    def compute_time_ns(self, instructions: int) -> float:
        """Pipeline-roofline time to retire ``instructions`` (one per cycle peak)."""
        if instructions < 0:
            raise ValueError("instruction count must be non-negative")
        cycles = instructions + self.pipeline_depth
        return cycles * 1000.0 / self.frequency_mhz

    def mram_stream_time_ns(self, nbytes: int) -> float:
        """MRAM-bandwidth-roofline time to stream ``nbytes``."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        return nbytes / self.mram_bandwidth_gbps


__all__ = ["DpuCore", "DpuState"]
