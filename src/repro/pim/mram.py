"""Sparse MRAM storage backing each DPU.

Only the bytes that have actually been written are stored (in 64 B blocks), so
instantiating 512 DPUs with 64 MB MRAM each costs nothing until data flows.
The MRAM is used by the functional layer of the transfer engines, examples and
tests to prove data integrity end to end (including the chip-interleaving
transpose); the timing layer never touches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

_BLOCK = 64


@dataclass
class Mram:
    """Byte-addressable sparse memory with bounds checking."""

    capacity_bytes: int
    _blocks: Dict[int, bytearray] = field(default_factory=dict, repr=False)

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        if offset + length > self.capacity_bytes:
            raise ValueError(
                f"access [{offset}, {offset + length}) exceeds MRAM capacity "
                f"{self.capacity_bytes}"
            )

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        position = offset
        remaining = memoryview(bytes(data))
        while remaining.nbytes:
            block_index, block_offset = divmod(position, _BLOCK)
            chunk = min(_BLOCK - block_offset, remaining.nbytes)
            block = self._blocks.setdefault(block_index, bytearray(_BLOCK))
            block[block_offset : block_offset + chunk] = remaining[:chunk]
            remaining = remaining[chunk:]
            position += chunk

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        out = bytearray(length)
        position = offset
        written = 0
        while written < length:
            block_index, block_offset = divmod(position, _BLOCK)
            chunk = min(_BLOCK - block_offset, length - written)
            block = self._blocks.get(block_index)
            if block is not None:
                out[written : written + chunk] = block[block_offset : block_offset + chunk]
            written += chunk
            position += chunk
        return bytes(out)

    @property
    def resident_bytes(self) -> int:
        """Number of bytes currently backed by storage (block granular)."""
        return len(self._blocks) * _BLOCK

    def clear(self) -> None:
        self._blocks.clear()


__all__ = ["Mram"]
