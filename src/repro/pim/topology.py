"""PIM device topology: channels, ranks, chips, banks and DPUs.

UPMEM-PIM ships DDR4-2400 DIMMs with eight PIM chips per rank and eight DPUs
(one per bank) per chip, i.e. 64 DPUs per rank.  The Table I configuration of
4 channels x 2 ranks therefore exposes 512 DPUs.  From the memory bus's point
of view every DPU owns exactly one PIM bank, which is how the reproduction
enumerates them (see :func:`repro.mapping.partition.pim_core_coordinates`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.mapping.address import DramAddress
from repro.mapping.partition import pim_core_coordinates, pim_core_id_from_coordinates
from repro.pim.dpu import DpuCore
from repro.sim.config import MemoryDomainConfig

CHIPS_PER_RANK = 8


@dataclass
class PimTopology:
    """The full set of DPUs of a PIM system plus id <-> bank translation."""

    geometry: MemoryDomainConfig
    dpus: List[DpuCore]

    @classmethod
    def build(cls, geometry: MemoryDomainConfig) -> "PimTopology":
        dpus = [
            DpuCore(dpu_id=dpu_id, mram_capacity_bytes=geometry.bank_capacity_bytes)
            for dpu_id in range(geometry.total_banks)
        ]
        return cls(geometry=geometry, dpus=dpus)

    @property
    def num_dpus(self) -> int:
        return len(self.dpus)

    @property
    def dpus_per_rank(self) -> int:
        return self.geometry.banks_per_rank

    @property
    def dpus_per_chip(self) -> int:
        return self.dpus_per_rank // CHIPS_PER_RANK

    def dpu(self, dpu_id: int) -> DpuCore:
        return self.dpus[dpu_id]

    def home_bank(self, dpu_id: int) -> DramAddress:
        """The (channel, rank, bank group, bank) that hosts this DPU's MRAM."""
        return pim_core_coordinates(self.geometry, dpu_id)

    def dpu_for_bank(self, addr: DramAddress) -> int:
        """The DPU id owning the bank addressed by ``addr``."""
        return pim_core_id_from_coordinates(
            self.geometry, addr.channel, addr.rank, addr.bankgroup, addr.bank
        )

    def dpus_in_channel(self, channel: int) -> List[int]:
        base = channel * self.geometry.banks_per_channel
        return list(range(base, base + self.geometry.banks_per_channel))

    def iter_dpu_ids(self) -> Iterator[int]:
        return iter(range(self.num_dpus))

    @property
    def aggregate_mram_bytes(self) -> int:
        return sum(dpu.mram_capacity_bytes for dpu in self.dpus)

    @property
    def aggregate_internal_bandwidth_gbps(self) -> float:
        """Aggregate DPU-side MRAM bandwidth (~1 GB/s per DPU, §II-C)."""
        return sum(dpu.mram_bandwidth_gbps for dpu in self.dpus)


__all__ = ["CHIPS_PER_RANK", "PimTopology"]
