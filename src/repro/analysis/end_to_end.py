"""End-to-end PrIM workload model (Figure 16).

The paper's hybrid methodology measures PIM kernel time on real hardware and
simulates only the DRAM<->PIM transfers, then combines the two.  This module
does the same composition: the *transfer* phases of each workload are timed
with the simulator's measured throughputs (baseline vs. PIM-MMU), while the
*kernel* phase is anchored to the workload's calibrated baseline breakdown and
left untouched by PIM-MMU (the DCE accelerates transfers, not kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.analysis.report import geometric_mean
from repro.workloads.prim import PRIM_WORKLOADS, PrimWorkload


@dataclass(frozen=True)
class PrimEndToEndResult:
    """Baseline vs PIM-MMU end-to-end breakdown of one workload (times in ns)."""

    workload: str
    baseline_d2p_ns: float
    baseline_kernel_ns: float
    baseline_p2d_ns: float
    pimmmu_d2p_ns: float
    pimmmu_kernel_ns: float
    pimmmu_p2d_ns: float

    @property
    def baseline_total_ns(self) -> float:
        return self.baseline_d2p_ns + self.baseline_kernel_ns + self.baseline_p2d_ns

    @property
    def pimmmu_total_ns(self) -> float:
        return self.pimmmu_d2p_ns + self.pimmmu_kernel_ns + self.pimmmu_p2d_ns

    @property
    def speedup(self) -> float:
        if self.pimmmu_total_ns <= 0:
            return float("inf")
        return self.baseline_total_ns / self.pimmmu_total_ns

    @property
    def baseline_transfer_fraction(self) -> float:
        return (self.baseline_d2p_ns + self.baseline_p2d_ns) / self.baseline_total_ns

    def normalised_breakdown(self, design: str) -> Dict[str, float]:
        """Phase times normalised to the baseline total (the Figure 16 bars)."""
        total = self.baseline_total_ns
        if design == "baseline":
            parts = (self.baseline_d2p_ns, self.baseline_kernel_ns, self.baseline_p2d_ns)
        elif design == "pim-mmu":
            parts = (self.pimmmu_d2p_ns, self.pimmmu_kernel_ns, self.pimmmu_p2d_ns)
        else:
            raise ValueError(f"unknown design '{design}'")
        return {
            "DRAM->PIM": parts[0] / total,
            "PIM kernel": parts[1] / total,
            "PIM->DRAM": parts[2] / total,
        }


def evaluate_prim_workload(
    workload: PrimWorkload,
    baseline_d2p_gbps: float,
    baseline_p2d_gbps: float,
    pimmmu_d2p_gbps: float,
    pimmmu_p2d_gbps: float,
) -> PrimEndToEndResult:
    """Compose one workload's end-to-end time from simulated transfer throughputs.

    The baseline DRAM->PIM time comes straight from the workload's input size
    and the simulated baseline throughput; the kernel and PIM->DRAM phases are
    anchored to it through the workload's calibrated baseline fractions (which
    is how the measured wall-clock breakdown enters the model).  PIM-MMU then
    shrinks only the transfer phases by the simulated speedups.
    """
    for name, value in (
        ("baseline_d2p_gbps", baseline_d2p_gbps),
        ("baseline_p2d_gbps", baseline_p2d_gbps),
        ("pimmmu_d2p_gbps", pimmmu_d2p_gbps),
        ("pimmmu_p2d_gbps", pimmmu_p2d_gbps),
    ):
        if value <= 0:
            raise ValueError(f"{name} must be positive")

    baseline_d2p_ns = workload.input_bytes / baseline_d2p_gbps
    baseline_kernel_ns = baseline_d2p_ns * (
        workload.kernel_fraction / workload.dram_to_pim_fraction
    )
    baseline_p2d_ns = baseline_d2p_ns * (
        workload.pim_to_dram_fraction / workload.dram_to_pim_fraction
    )
    d2p_speedup = pimmmu_d2p_gbps / baseline_d2p_gbps
    p2d_speedup = pimmmu_p2d_gbps / baseline_p2d_gbps
    return PrimEndToEndResult(
        workload=workload.name,
        baseline_d2p_ns=baseline_d2p_ns,
        baseline_kernel_ns=baseline_kernel_ns,
        baseline_p2d_ns=baseline_p2d_ns,
        pimmmu_d2p_ns=baseline_d2p_ns / d2p_speedup,
        pimmmu_kernel_ns=baseline_kernel_ns,
        pimmmu_p2d_ns=baseline_p2d_ns / p2d_speedup,
    )


def evaluate_prim_suite(
    baseline_d2p_gbps: float,
    baseline_p2d_gbps: float,
    pimmmu_d2p_gbps: float,
    pimmmu_p2d_gbps: float,
    workloads: Iterable[PrimWorkload] = (),
) -> List[PrimEndToEndResult]:
    """Evaluate every PrIM workload (or a subset) with the given throughputs."""
    selected = list(workloads) if workloads else list(PRIM_WORKLOADS.values())
    return [
        evaluate_prim_workload(
            workload,
            baseline_d2p_gbps,
            baseline_p2d_gbps,
            pimmmu_d2p_gbps,
            pimmmu_p2d_gbps,
        )
        for workload in selected
    ]


def suite_summary(results: Iterable[PrimEndToEndResult]) -> Dict[str, float]:
    """Average/max speedup and transfer share across a suite run."""
    results = list(results)
    speedups = [result.speedup for result in results]
    fractions = [result.baseline_transfer_fraction for result in results]
    return {
        "geomean_speedup": geometric_mean(speedups),
        "mean_speedup": sum(speedups) / len(speedups),
        "max_speedup": max(speedups),
        "mean_transfer_fraction": sum(fractions) / len(fractions),
        "max_transfer_fraction": max(fractions),
    }


__all__ = [
    "PrimEndToEndResult",
    "evaluate_prim_suite",
    "evaluate_prim_workload",
    "suite_summary",
]
