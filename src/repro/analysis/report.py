"""Small helpers for rendering benchmark output as the paper's tables/figures."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = [value for value in values]
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def normalise(values: Sequence[float], reference: float) -> List[float]:
    """Normalise a series to a reference value (the paper's 'normalized' axes)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return [value / reference for value in values]


#: Column order of the per-tenant scenario tables (``repro scenarios``).
TENANT_TABLE_COLUMNS = (
    "tenant",
    "workload",
    "MiB",
    "duration_us",
    "throughput_gbps",
    "p50_lat_ns",
    "p99_lat_ns",
    "slowdown",
)


def format_tenant_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render per-tenant scenario rows (throughput, p50/p99 latency, slowdown).

    ``rows`` is what :meth:`repro.scenarios.tenant.ScenarioOutcome.rows`
    produces; keeping the renderer here keeps every report table of the
    reproduction in one module.
    """
    return format_table(
        rows, columns=list(TENANT_TABLE_COLUMNS), title=title, float_format="{:.2f}"
    )


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render rows (list of dicts) as a fixed-width text table."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(row[index]) for row in rendered)) if rendered else len(column)
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


__all__ = [
    "TENANT_TABLE_COLUMNS",
    "format_table",
    "format_tenant_table",
    "geometric_mean",
    "normalise",
]
