"""Result analysis: table formatting and end-to-end workload modelling."""

from repro.analysis.end_to_end import PrimEndToEndResult, evaluate_prim_suite, evaluate_prim_workload
from repro.analysis.report import (
    format_table,
    format_tenant_table,
    geometric_mean,
    normalise,
)

__all__ = [
    "PrimEndToEndResult",
    "evaluate_prim_suite",
    "evaluate_prim_workload",
    "format_table",
    "format_tenant_table",
    "geometric_mean",
    "normalise",
]
