"""Pluggable memory-scheduler policies and their registry.

The service kernel (:mod:`repro.memctrl.kernel`) asks its policy one question
per issued command: *given this queue and this channel state, which request is
served next?*  Policies are selected by the ``MemCtrlConfig.policy`` string
(threaded through :class:`~repro.sim.config.SystemConfig`, the
:class:`~repro.api.Session` facade, experiment specs and the CLI) and listed
by ``repro policies``.

Registered policies
-------------------
``fcfs``
    Strict first-come first-served: always the oldest request.  The simplest
    possible reference; pays a row cycle for every bank conflict.
``frfcfs`` (default; the config spells it ``FR-FCFS``)
    First-ready FR-FCFS: the oldest request that hits an already-open row,
    falling back to the oldest request.  Identical decisions to the seed's
    linear-scan implementation, found through the queue's (bank, row) index.
``frfcfs_cap`` / ``frfcfs_cap:<N>``
    FR-FCFS with a row-hit streak cap (default 4): after ``N`` consecutive
    hits to one row, the oldest request is served even if more hits are
    pending, bounding the starvation a streaming row can inflict.
``qos_priority`` / ``qos_priority:<tenant>=<prio>,...``
    Tenant-aware strict-priority scheduling: requests of the highest-priority
    tenant class present are served first (FR-FCFS within a class).  Unlisted
    tenants (and untagged requests) default to priority 0; higher numbers are
    served first.  This is the policy the ``qos-priority`` scenario uses to
    relieve priority inversion for latency-sensitive tenants.

Policy *specs* are strings so they stay picklable, cache-key friendly and
CLI-friendly: ``name`` or ``name:args``, case-insensitive, with ``-``
ignored in the name (``FR-FCFS`` therefore resolves to ``frfcfs``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.memctrl.queues import IndexedQueue
from repro.memctrl.request import MemoryRequest
from repro.registry import VariantRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dram.channel import DdrChannel


class SchedulerPolicy:
    """Base class: picks the next request to service from a queue."""

    #: Registry key (set on registration).
    name: str = "abstract"
    #: One-line description shown by ``repro policies``.
    description: str = ""

    def select(
        self, queue: IndexedQueue, channel: "DdrChannel"
    ) -> MemoryRequest:
        """Return the request to service next (``queue`` is non-empty)."""
        raise NotImplementedError

    # Optional hooks ------------------------------------------------------
    def on_enqueue(self, request: MemoryRequest) -> None:
        """Called after a request is admitted into a queue."""

    def on_remove(self, request: MemoryRequest) -> None:
        """Called when a request leaves a queue (picked for service)."""

    def reset(self) -> None:
        """Forget all scheduling state (power-on reset)."""


class FcfsPolicy(SchedulerPolicy):
    """Strict arrival-order service."""

    description = "first-come first-served (arrival order, row state ignored)"

    def select(self, queue: IndexedQueue, channel: "DdrChannel") -> MemoryRequest:
        return queue.first()


class FrFcfsPolicy(SchedulerPolicy):
    """First-ready FR-FCFS: oldest row hit first, otherwise the oldest."""

    description = "first-ready FCFS: oldest open-row hit, else oldest (default)"

    def select(self, queue: IndexedQueue, channel: "DdrChannel") -> MemoryRequest:
        hit = queue.oldest_hit(channel)
        if hit is not None:
            return hit
        return queue.first()


class FrFcfsCapPolicy(SchedulerPolicy):
    """FR-FCFS with a cap on consecutive same-row hits (anti-starvation)."""

    description = "FR-FCFS with a row-hit streak cap (frfcfs_cap:<N>, default 4)"

    def __init__(self, cap: int = 4) -> None:
        if cap < 1:
            raise ValueError(f"row-hit cap must be >= 1, got {cap}")
        self.cap = cap
        self._streak_bank_row: Optional[tuple] = None
        self._streak = 0

    def select(self, queue: IndexedQueue, channel: "DdrChannel") -> MemoryRequest:
        hit = queue.oldest_hit(channel)
        oldest = queue.first()
        if hit is None:
            return oldest
        if (
            hit is not oldest
            and self._streak >= self.cap
            and hit._bank_row == self._streak_bank_row
        ):
            return oldest
        return hit

    def on_remove(self, request: MemoryRequest) -> None:
        if request._bank_row == self._streak_bank_row:
            self._streak += 1
        else:
            self._streak_bank_row = request._bank_row
            self._streak = 1

    def reset(self) -> None:
        self._streak_bank_row = None
        self._streak = 0


class QosPriorityPolicy(SchedulerPolicy):
    """Strict tenant-priority classes, FR-FCFS within the winning class."""

    description = (
        "tenant-aware strict priority (qos_priority:<tenant>=<prio>,...), "
        "FR-FCFS within a class"
    )

    def __init__(self, priorities: Optional[Dict[str, int]] = None) -> None:
        self.priorities = dict(priorities or {})
        #: (is_write, priority) -> IndexedQueue mirror of that class's
        #: requests.  Buckets are kept per direction because ``select`` must
        #: only ever return a member of the queue it was handed (the kernel's
        #: read/write queue choice is made by the write-drain logic, not by
        #: the policy).
        self._classes: Dict[tuple, IndexedQueue] = {}

    def _priority_of(self, request: MemoryRequest) -> int:
        tenant = request.tenant
        if tenant is None:
            return 0
        return self.priorities.get(tenant, 0)

    def on_enqueue(self, request: MemoryRequest) -> None:
        key = (request.is_write, self._priority_of(request))
        bucket = self._classes.get(key)
        if bucket is None:
            bucket = self._classes[key] = IndexedQueue()
        bucket.add(request)

    def on_remove(self, request: MemoryRequest) -> None:
        key = (request.is_write, self._priority_of(request))
        bucket = self._classes[key]
        bucket.remove(request)
        if not bucket:
            del self._classes[key]

    def select(self, queue: IndexedQueue, channel: "DdrChannel") -> MemoryRequest:
        first = queue.first()
        is_write = first.is_write  # queues are homogeneous per direction
        best_priority = None
        for bucket_write, priority in self._classes:
            if bucket_write == is_write and (
                best_priority is None or priority > best_priority
            ):
                best_priority = priority
        bucket = self._classes[(is_write, best_priority)]
        if len(bucket) == len(queue):
            # One class present (the common case): plain FR-FCFS.
            hit = queue.oldest_hit(channel)
            return hit if hit is not None else first
        hit = bucket.oldest_hit(channel)
        return hit if hit is not None else bucket.first()

    def reset(self) -> None:
        self._classes.clear()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: The scheduler-policy axis on the shared variant-registry mechanism
#: (``repro variants`` lists it alongside kernels, pumps, backends, fabrics).
POLICIES = VariantRegistry(
    "scheduler policy",
    error=KeyError,
    known_label="registered",
    dup_label="policy",
)


def register_policy(
    name: str,
    factory: Callable[[Optional[str]], SchedulerPolicy],
    description: str,
) -> None:
    """Register a scheduler policy under ``name`` (listed by ``repro variants``)."""
    POLICIES.register(name, factory, description)


def normalize_policy_name(name: str) -> str:
    """Canonicalise a policy spelling: lower-case, dashes ignored.

    ``FR-FCFS`` (the Table I spelling used by ``MemCtrlConfig``) normalises
    to ``frfcfs``.
    """
    return POLICIES.normalize(name)


def parse_policy_spec(spec: str) -> tuple:
    """Split ``name[:args]`` into ``(canonical_name, args_or_None)``."""
    return POLICIES.parse(spec)


def available_policies() -> List[str]:
    """Registered policy names, in registration order."""
    return POLICIES.names()


def policy_description(name: str) -> str:
    return POLICIES.description(name)


def create_policy(spec: str) -> SchedulerPolicy:
    """Instantiate a policy from a ``name[:args]`` spec string."""
    policy = POLICIES.create(spec)
    policy.name, _ = POLICIES.parse(spec)
    return policy


def _fcfs_factory(args: Optional[str]) -> SchedulerPolicy:
    if args:
        raise ValueError(f"fcfs takes no arguments, got {args!r}")
    return FcfsPolicy()


def _frfcfs_factory(args: Optional[str]) -> SchedulerPolicy:
    if args:
        raise ValueError(f"frfcfs takes no arguments, got {args!r}")
    return FrFcfsPolicy()


def _frfcfs_cap_factory(args: Optional[str]) -> SchedulerPolicy:
    if args is None:
        return FrFcfsCapPolicy()
    try:
        cap = int(args)
    except ValueError:
        raise ValueError(f"frfcfs_cap takes an integer cap, got {args!r}")
    return FrFcfsCapPolicy(cap=cap)


def parse_qos_priorities(args: Optional[str]) -> Dict[str, int]:
    """Parse ``tenantA=2,tenantB=1`` into a priority mapping."""
    priorities: Dict[str, int] = {}
    if not args:
        return priorities
    for item in args.split(","):
        tenant, sep, value = item.partition("=")
        tenant = tenant.strip()
        if not sep or not tenant:
            raise ValueError(
                f"cannot parse qos_priority entry {item!r}; expected "
                "'<tenant>=<priority>'"
            )
        try:
            priorities[tenant] = int(value)
        except ValueError:
            raise ValueError(f"priority for tenant {tenant!r} must be an integer")
    return priorities


def _qos_priority_factory(args: Optional[str]) -> SchedulerPolicy:
    return QosPriorityPolicy(parse_qos_priorities(args))


register_policy("fcfs", _fcfs_factory, FcfsPolicy.description)
register_policy("frfcfs", _frfcfs_factory, FrFcfsPolicy.description)
register_policy("frfcfs_cap", _frfcfs_cap_factory, FrFcfsCapPolicy.description)
register_policy("qos_priority", _qos_priority_factory, QosPriorityPolicy.description)


__all__ = [
    "POLICIES",
    "FcfsPolicy",
    "FrFcfsCapPolicy",
    "FrFcfsPolicy",
    "QosPriorityPolicy",
    "SchedulerPolicy",
    "available_policies",
    "create_policy",
    "normalize_policy_name",
    "parse_policy_spec",
    "parse_qos_priorities",
    "policy_description",
    "register_policy",
]
