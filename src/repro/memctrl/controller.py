"""FR-FCFS channel controller with write-drain and backpressure.

The controller is fully event-driven: enqueueing a request schedules a service
event, each service event issues exactly one column access through the DDR4
channel model, and the next service event is scheduled at the issued command's
CAS time so that requests arriving in the meantime still participate in the
FR-FCFS decision (preserving the scheduler's reordering behaviour without
stepping idle cycles).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dram.channel import DdrChannel
from repro.memctrl.request import MemoryRequest
from repro.sim.config import MemCtrlConfig
from repro.sim.engine import SimulationEngine
from repro.sim.stats import StatsRegistry


class ChannelController:
    """One per-channel memory controller (Table I: 64-entry queues, FR-FCFS)."""

    def __init__(
        self,
        engine: SimulationEngine,
        channel: DdrChannel,
        config: MemCtrlConfig,
        stats: StatsRegistry,
        name: str,
    ) -> None:
        self.engine = engine
        self.channel = channel
        self.config = config
        self.stats = stats
        self.name = name
        self._read_queue: List[MemoryRequest] = []
        self._write_queue: List[MemoryRequest] = []
        self._drain_mode: bool = False
        self._service_pending: bool = False
        self._next_decision_ns: float = 0.0
        self._slot_listeners: List[Callable[[], None]] = []
        self._read_bw = stats.bandwidth_tracker(f"{name}/read")
        self._write_bw = stats.bandwidth_tracker(f"{name}/write")
        self._served = stats.counter(f"{name}/served")
        self._row_hit_counter = stats.counter(f"{name}/row_hits")
        self._latency_hist = stats.histogram(f"{name}/latency_ns")

    # --------------------------------------------------------------- queueing
    @property
    def read_queue_occupancy(self) -> int:
        return len(self._read_queue)

    @property
    def write_queue_occupancy(self) -> int:
        return len(self._write_queue)

    def can_accept(self, is_write: bool) -> bool:
        if is_write:
            return len(self._write_queue) < self.config.write_queue_depth
        return len(self._read_queue) < self.config.read_queue_depth

    def enqueue(self, request: MemoryRequest) -> bool:
        """Accept ``request`` if the target queue has room; schedule servicing."""
        if not self.can_accept(request.is_write):
            return False
        request.arrival_ns = self.engine.now
        request.channel_id = self.channel.channel_id
        if request.is_write:
            self._write_queue.append(request)
        else:
            self._read_queue.append(request)
        self._schedule_service()
        return True

    def add_slot_listener(self, callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired the next time a queue slot frees."""
        self._slot_listeners.append(callback)

    def _notify_slot_listeners(self) -> None:
        if not self._slot_listeners:
            return
        listeners, self._slot_listeners = self._slot_listeners, []
        for callback in listeners:
            callback()

    # -------------------------------------------------------------- servicing
    def _schedule_service(self) -> None:
        if self._service_pending:
            return
        if not self._read_queue and not self._write_queue:
            return
        self._service_pending = True
        when = max(self.engine.now, self._next_decision_ns)
        self.engine.schedule_at(when, self._service)

    def _update_drain_mode(self) -> None:
        writes = len(self._write_queue)
        if self._drain_mode:
            if writes <= self.config.write_low_watermark:
                self._drain_mode = False
        else:
            if writes >= self.config.write_high_watermark:
                self._drain_mode = True

    def _pick_queue(self) -> Optional[List[MemoryRequest]]:
        self._update_drain_mode()
        if self._drain_mode and self._write_queue:
            return self._write_queue
        if self._read_queue:
            return self._read_queue
        if self._write_queue:
            return self._write_queue
        return None

    def _pick_request(self, queue: List[MemoryRequest]) -> MemoryRequest:
        """FR-FCFS: oldest row hit first, otherwise the oldest request."""
        for request in queue:
            assert request.dram_addr is not None
            if self.channel.row_state(request.dram_addr) == "hit":
                return request
        return queue[0]

    def _service(self) -> None:
        self._service_pending = False
        queue = self._pick_queue()
        if queue is None:
            return
        request = self._pick_request(queue)
        queue.remove(request)
        assert request.dram_addr is not None
        timing = self.channel.access(
            request.dram_addr, request.is_write, earliest=self.engine.now
        )
        request.issue_ns = timing.cas_time
        request.row_state = timing.row_state
        self._served.add(1)
        if timing.is_row_hit:
            self._row_hit_counter.add(1)
        tracker = self._write_bw if request.is_write else self._read_bw
        tracker.record(timing.data_end, request.size_bytes)
        self.engine.schedule_at(
            timing.data_end, lambda req=request, t=timing.data_end: self._finish(req, t)
        )
        self._notify_slot_listeners()
        self._next_decision_ns = max(self.engine.now, timing.cas_time)
        self._schedule_service()

    def _finish(self, request: MemoryRequest, time_ns: float) -> None:
        if request.arrival_ns is not None:
            self._latency_hist.add(time_ns - request.arrival_ns)
            if request.tenant is not None:
                # Per-tenant breakdowns for the scenario composer: latency is
                # bucketed across every channel (and both memory domains,
                # since the registry is system-wide), bytes per direction.
                self.stats.histogram(f"tenant/{request.tenant}/latency_ns").add(
                    time_ns - request.arrival_ns
                )
                self.stats.counter(f"tenant/{request.tenant}/bytes").add(
                    request.size_bytes
                )
        request.complete(time_ns)

    # ------------------------------------------------------------------ reset
    def reset(self) -> None:
        """Reset scheduling state to power-on.  The controller must be idle."""
        if not self.is_idle():
            raise RuntimeError(
                f"cannot reset controller {self.name!r} with requests in flight"
            )
        self._drain_mode = False
        self._next_decision_ns = 0.0
        self._slot_listeners.clear()
        self.channel.reset()

    # ------------------------------------------------------------------ stats
    @property
    def read_bytes(self) -> int:
        return self._read_bw.total_bytes

    @property
    def write_bytes(self) -> int:
        return self._write_bw.total_bytes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def is_idle(self) -> bool:
        return not self._read_queue and not self._write_queue and not self._service_pending


__all__ = ["ChannelController"]
