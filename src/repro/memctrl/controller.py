"""Channel controller: queue/admission front-end over the batched service kernel.

Since PR 4 the controller is split in two layers:

* :class:`ChannelController` (this module) is the **admission front-end**: it
  enforces queue depths, stamps arrival metadata, maintains the indexed
  read/write queues (:class:`~repro.memctrl.queues.IndexedQueue`), notifies
  slot listeners and owns the per-channel statistics.
* :class:`~repro.memctrl.kernel.ServiceKernel` makes the scheduling decisions
  and issues column accesses through the DDR4 channel model, batching whole
  bursts of requests into one simulation event whenever the event order
  provably allows it.

The scheduling *policy* (FR-FCFS by default) is pluggable: the
``MemCtrlConfig.policy`` spec string selects one of the registered
:mod:`repro.memctrl.policies`.

The event-level behaviour is bit-identical to the seed's one-event-per-request
controller; the equivalence suite (``tests/test_kernel_equivalence.py``)
asserts it across design points, policies and traffic shapes.
"""

from __future__ import annotations

from typing import Callable, List

from repro.dram.channel import DdrChannel
from repro.memctrl.kernel import kernel_class
from repro.memctrl.policies import create_policy
from repro.memctrl.queues import IndexedQueue
from repro.memctrl.request import MemoryRequest
from repro.sim.config import MemCtrlConfig
from repro.sim.engine import SimulationEngine
from repro.sim.stats import StatsRegistry


class ChannelController:
    """One per-channel memory controller (Table I: 64-entry queues, FR-FCFS)."""

    def __init__(
        self,
        engine: SimulationEngine,
        channel: DdrChannel,
        config: MemCtrlConfig,
        stats: StatsRegistry,
        name: str,
        batching: bool = True,
    ) -> None:
        self.engine = engine
        self.channel = channel
        self.config = config
        self.stats = stats
        self.name = name
        self._read_queue = IndexedQueue()
        self._write_queue = IndexedQueue()
        self._next_seq = 0
        self._slot_listeners: List[Callable[[], None]] = []
        self.policy = create_policy(config.policy)
        # Elide per-request hook calls for policies that keep no queue-side
        # state (the base-class hooks are no-ops).
        from repro.memctrl.policies import SchedulerPolicy as _Base

        self._policy_on_enqueue = (
            self.policy.on_enqueue
            if type(self.policy).on_enqueue is not _Base.on_enqueue
            else None
        )
        self.kernel = kernel_class(config.kernel)(
            engine, channel, config, self.policy, self, batching=batching
        )
        self._read_bw = stats.bandwidth_tracker(f"{name}/read")
        self._write_bw = stats.bandwidth_tracker(f"{name}/write")
        self._served = stats.counter(f"{name}/served")
        self._row_hit_counter = stats.counter(f"{name}/row_hits")
        self._latency_hist = stats.histogram(f"{name}/latency_ns")
        # Bound method, hot path: one latency sample per completed request.
        # Histogram.reset() clears the list in place, so the binding survives
        # stats resets.
        self._latency_append = self._latency_hist._samples.append

    # --------------------------------------------------------------- queueing
    @property
    def read_queue_occupancy(self) -> int:
        return len(self._read_queue)

    @property
    def write_queue_occupancy(self) -> int:
        return len(self._write_queue)

    def can_accept(self, is_write: bool) -> bool:
        if is_write:
            return len(self._write_queue) < self.config.write_queue_depth
        return len(self._read_queue) < self.config.read_queue_depth

    def enqueue(self, request: MemoryRequest) -> bool:
        """Accept ``request`` if the target queue has room; schedule servicing."""
        if request.is_write:
            queue = self._write_queue
            if len(queue) >= self.config.write_queue_depth:
                return False
        else:
            queue = self._read_queue
            if len(queue) >= self.config.read_queue_depth:
                return False
        channel = self.channel
        request.arrival_ns = self.engine._now
        request.channel_id = channel.channel_id
        addr = request.dram_addr
        seq = self._next_seq
        self._next_seq = seq + 1
        request._seq = seq
        bank_key = (
            addr.rank * channel._banks_per_rank
            + addr.bankgroup * channel._banks_per_group
            + addr.bank
        )
        request._bank_row = (bank_key, addr.row)
        # Inlined IndexedQueue.add (one call per accepted request otherwise).
        queue._pending[seq] = request
        if queue._indexed:
            queue._index_add(request)
        if self._policy_on_enqueue is not None:
            self._policy_on_enqueue(request)
        kernel = self.kernel
        if not kernel._service_pending:
            kernel.schedule_service()
        return True

    def enqueue_prepared(
        self, request: MemoryRequest, bank_key: int, row: int
    ) -> bool:
        """:meth:`enqueue` with the ``(bank_key, row)`` coordinates precomputed.

        The burst admission path (:meth:`repro.system.PimSystem.submit_burst`)
        computes flat bank keys for a whole address column in one vectorized
        pass; this entry point skips re-deriving them from the decoded
        address.  Behaviour is otherwise identical to :meth:`enqueue`.
        """
        if request.is_write:
            queue = self._write_queue
            if len(queue) >= self.config.write_queue_depth:
                return False
        else:
            queue = self._read_queue
            if len(queue) >= self.config.read_queue_depth:
                return False
        request.arrival_ns = self.engine._now
        request.channel_id = self.channel.channel_id
        seq = self._next_seq
        self._next_seq = seq + 1
        request._seq = seq
        request._bank_row = (bank_key, row)
        queue._pending[seq] = request
        if queue._indexed:
            queue._index_add(request)
        if self._policy_on_enqueue is not None:
            self._policy_on_enqueue(request)
        kernel = self.kernel
        if not kernel._service_pending:
            kernel.schedule_service()
        return True

    def add_slot_listener(self, callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired the next time a queue slot frees."""
        self._slot_listeners.append(callback)

    def _notify_slot_listeners(self) -> None:
        if not self._slot_listeners:
            return
        listeners, self._slot_listeners = self._slot_listeners, []
        for callback in listeners:
            callback()

    # ------------------------------------------------------------- accounting
    # Per-issue statistics (served/row-hit counters, bandwidth tracking) are
    # inlined in ServiceKernel._service -- the kernel owns the issue path.

    def _finish(self, request: MemoryRequest, time_ns: float) -> None:
        if request.arrival_ns is not None:
            self._latency_append(time_ns - request.arrival_ns)
            if request.tenant is not None:
                # Per-tenant breakdowns for the scenario composer: latency is
                # bucketed across every channel (and both memory domains,
                # since the registry is system-wide), bytes per direction.
                self.stats.histogram(f"tenant/{request.tenant}/latency_ns").add(
                    time_ns - request.arrival_ns
                )
                self.stats.counter(f"tenant/{request.tenant}/bytes").add(
                    request.size_bytes
                )
        # Inlined MemoryRequest.complete (one call per finished request).
        request.completion_ns = time_ns
        on_complete = request.on_complete
        if on_complete is not None:
            on_complete(request)

    # ------------------------------------------------------------------ reset
    def reset(self) -> None:
        """Reset scheduling state to power-on.  The controller must be idle."""
        if not self.is_idle():
            raise RuntimeError(
                f"cannot reset controller {self.name!r} with requests in flight"
            )
        self._read_queue.clear()
        self._write_queue.clear()
        self._next_seq = 0
        self._slot_listeners.clear()
        self.kernel.reset()
        self.channel.reset()

    # ------------------------------------------------------------------ stats
    @property
    def read_bytes(self) -> int:
        return self._read_bw.total_bytes

    @property
    def write_bytes(self) -> int:
        return self._write_bw.total_bytes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def is_idle(self) -> bool:
        return (
            not self._read_queue
            and not self._write_queue
            and not self.kernel.service_pending
        )


__all__ = ["ChannelController"]
