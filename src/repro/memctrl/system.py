"""Per-domain grouping of channel controllers.

A :class:`MemorySystem` owns one :class:`~repro.memctrl.controller.ChannelController`
per channel of a memory domain (the DRAM side or the PIM side) and routes
decoded requests to the controller of their channel.  Address decoding itself
is performed one level up (by the system mapper / HetMap), because the paper's
whole point is that the *mapping function* -- not the controller -- decides
how much parallelism a traffic stream can extract.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.dram.channel import DdrChannel
from repro.memctrl.controller import ChannelController
from repro.memctrl.request import MemoryRequest
from repro.sim.config import MemCtrlConfig, MemoryDomainConfig
from repro.sim.engine import SimulationEngine
from repro.sim.stats import StatsRegistry


class MemorySystem:
    """All channels and controllers of one memory domain."""

    def __init__(
        self,
        engine: SimulationEngine,
        geometry: MemoryDomainConfig,
        memctrl_config: MemCtrlConfig,
        stats: StatsRegistry,
        name: str,
    ) -> None:
        self.engine = engine
        self.geometry = geometry
        self.name = name
        self.stats = stats
        self.channels: List[DdrChannel] = [
            DdrChannel(geometry, channel_id) for channel_id in range(geometry.channels)
        ]
        self.controllers: List[ChannelController] = [
            ChannelController(
                engine,
                channel,
                memctrl_config,
                stats,
                name=f"{name}/ch{channel.channel_id}",
            )
            for channel in self.channels
        ]

    def controller_for(self, request: MemoryRequest) -> ChannelController:
        if request.dram_addr is None:
            raise ValueError("request must be decoded before routing")
        return self.controllers[request.dram_addr.channel]

    def submit(self, request: MemoryRequest) -> bool:
        """Route a decoded request to its channel controller (False if queue full)."""
        addr = request.dram_addr
        if addr is None:
            raise ValueError("request must be decoded before routing")
        return self.controllers[addr.channel].enqueue(request)

    def can_accept(self, request: MemoryRequest) -> bool:
        return self.controller_for(request).can_accept(request.is_write)

    def add_slot_listener(self, request: MemoryRequest, callback: Callable[[], None]) -> None:
        """Register for a retry notification on the request's target controller."""
        self.controller_for(request).add_slot_listener(callback)

    def is_idle(self) -> bool:
        return all(controller.is_idle() for controller in self.controllers)

    def reset(self) -> None:
        """Reset every (idle) channel controller to power-on state."""
        for controller in self.controllers:
            controller.reset()

    # ------------------------------------------------------------------ stats
    @property
    def peak_bandwidth_gbps(self) -> float:
        return self.geometry.peak_bandwidth_gbps

    def total_bytes(self) -> int:
        return sum(controller.total_bytes for controller in self.controllers)

    def read_bytes(self) -> int:
        return sum(controller.read_bytes for controller in self.controllers)

    def write_bytes(self) -> int:
        return sum(controller.write_bytes for controller in self.controllers)

    def per_channel_bytes(self, direction: str = "write") -> Dict[int, int]:
        """Per-channel byte counts (``direction`` is ``read``, ``write`` or ``all``)."""
        result: Dict[int, int] = {}
        for controller in self.controllers:
            if direction == "read":
                value = controller.read_bytes
            elif direction == "write":
                value = controller.write_bytes
            elif direction == "all":
                value = controller.total_bytes
            else:
                raise ValueError(f"unknown direction '{direction}'")
            result[controller.channel.channel_id] = value
        return result

    def queue_occupancies(self) -> Dict[int, Dict[str, int]]:
        """Current read/write queue occupancy per channel (scenario telemetry)."""
        return {
            controller.channel.channel_id: {
                "read": controller.read_queue_occupancy,
                "write": controller.write_queue_occupancy,
            }
            for controller in self.controllers
        }

    def bandwidth_utilization(self, elapsed_ns: float) -> float:
        """Achieved bandwidth over ``elapsed_ns`` as a fraction of the peak."""
        if elapsed_ns <= 0:
            return 0.0
        achieved_gbps = self.total_bytes() / elapsed_ns
        return achieved_gbps / self.peak_bandwidth_gbps

    def per_channel_window_series(
        self, window_ns: float, direction: str, start_ns: float, end_ns: float
    ) -> Dict[int, List[float]]:
        """Per-channel transferred bytes per time window (Figure 6 traces)."""
        series: Dict[int, List[float]] = {}
        for controller in self.controllers:
            tracker_name = f"{controller.name}/{direction}"
            tracker = self.stats.bandwidth_tracker(tracker_name)
            series[controller.channel.channel_id] = tracker.window_series(
                window_ns, start_ns=start_ns, end_ns=end_ns
            )
        return series


__all__ = ["MemorySystem"]
