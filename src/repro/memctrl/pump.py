"""Transfer-pump registry.

The *pump* is the front half of the hot path: the loop inside the DCE,
software/memcpy copy threads, and the replay/serving drivers that turns a
transfer description into memory requests.  ``object`` is the historical
one-request-per-chunk pump; ``burst`` issues whole in-flight windows as
:class:`repro.memctrl.burst.RequestBurst` columns through
``PimSystem.submit_burst``.

Both pumps are bit-identical at the event level -- same finish times, same
stats, same event ordering.  The differential suite
(``tests/differential``) replays programs across both pumps x both service
kernels to enforce it.
"""
from __future__ import annotations

__all__ = ["available_pumps", "validate_pump"]


def available_pumps() -> tuple:
    """Names accepted by :data:`MemCtrlConfig.transfer_pump` (``--transfer-pump``)."""
    return ("object", "burst")


def validate_pump(spec: str) -> str:
    """Validate a pump spec string, returning it unchanged.

    Raises ``ValueError`` with the available names on an unknown spec, the
    same fail-fast shape as :func:`repro.memctrl.kernel.kernel_class`.
    """
    if spec not in available_pumps():
        raise ValueError(
            f"unknown transfer pump {spec!r}; available: "
            + ", ".join(available_pumps())
        )
    return spec
