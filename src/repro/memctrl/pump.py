"""Transfer-pump registry.

The *pump* is the front half of the hot path: the loop inside the DCE,
software/memcpy copy threads, and the replay/serving drivers that turns a
transfer description into memory requests.  ``object`` is the historical
one-request-per-chunk pump; ``burst`` issues whole in-flight windows as
:class:`repro.memctrl.burst.RequestBurst` columns through
``PimSystem.submit_burst``.

Both pumps are bit-identical at the event level -- same finish times, same
stats, same event ordering.  The differential suite
(``tests/differential``) replays programs across both pumps x both service
kernels to enforce it.
"""
from __future__ import annotations

from repro.registry import VariantRegistry

__all__ = ["PUMPS", "available_pumps", "validate_pump"]

#: The transfer-pump axis on the shared variant-registry mechanism.  Pump
#: specs are exact names with no ``:args`` suffix; the pump is threaded as a
#: plain string into the engines, so the factories are identity markers.
PUMPS = VariantRegistry(
    "transfer pump",
    error=ValueError,
    known_label="available",
    dup_label="pump",
    normalize_names=False,
    parse_specs=False,
)
PUMPS.register(
    "object", lambda: "object", "one MemoryRequest per chunk (default)"
)
PUMPS.register(
    "burst",
    lambda: "burst",
    "whole in-flight windows as RequestBurst columns (bit-identical)",
)


def available_pumps() -> tuple:
    """Names accepted by :data:`MemCtrlConfig.transfer_pump` (``--transfer-pump``)."""
    return tuple(PUMPS.names())


def validate_pump(spec: str) -> str:
    """Validate a pump spec string, returning it unchanged.

    Raises ``ValueError`` with the available names on an unknown spec, the
    same fail-fast shape as :func:`repro.memctrl.kernel.kernel_class`.
    """
    return PUMPS.require(spec)
