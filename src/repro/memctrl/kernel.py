"""Batched DRAM service kernel.

The seed controller serviced exactly one request per simulation event: fire,
pick, issue, schedule the next service event, return to the heap.  The
:class:`ServiceKernel` keeps the *decisions* identical but batches the
*mechanics*: inside one service callback it keeps issuing requests for as
long as it can prove that the per-request path would not have fired any other
event in between.  The proof is a heap peek -- if the next pending engine
event is strictly later than the next scheduling decision, the kernel is the
next event anyway, so it advances the clock directly
(:meth:`~repro.sim.engine.SimulationEngine.advance_to`, the event-free drain
fast path) and services the next request without a heap round-trip.

Per-request finish times are computed analytically by the DDR4 channel model
(:meth:`~repro.dram.channel.DdrChannel.access`, with its validation skipped
for kernel-originated addresses and a branch-free same-row hit path); the
kernel only schedules the completion callbacks, which must interleave with
foreign events at their exact times.

Setting ``batching=False`` restores the one-event-per-request behaviour of
the seed -- the equivalence test suite runs both modes and asserts identical
finish times and stats.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING

from repro.dram.channel import DdrChannel
from repro.memctrl.policies import FrFcfsPolicy, SchedulerPolicy
from repro.memctrl.queues import IndexedQueue
from repro.registry import VariantRegistry
from repro.sim.config import MemCtrlConfig
from repro.sim.engine import SimulationEngine, ns_to_ticks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memctrl.controller import ChannelController


class ServiceKernel:
    """Issues queued requests to one DDR channel under a scheduler policy."""

    __slots__ = (
        "engine",
        "channel",
        "config",
        "policy",
        "controller",
        "batching",
        "_service_pending",
        "_next_decision_ns",
        "_drain_mode",
        "_policy_on_remove",
        "_frfcfs_fast",
    )

    def __init__(
        self,
        engine: SimulationEngine,
        channel: DdrChannel,
        config: MemCtrlConfig,
        policy: SchedulerPolicy,
        controller: "ChannelController",
        batching: bool = True,
    ) -> None:
        self.engine = engine
        self.channel = channel
        self.config = config
        self.policy = policy
        self.controller = controller
        self.batching = batching
        self._service_pending = False
        self._next_decision_ns = 0.0
        self._drain_mode = False
        self._policy_on_remove = (
            policy.on_remove
            if type(policy).on_remove is not SchedulerPolicy.on_remove
            else None
        )
        # The default FR-FCFS pick is inlined in the service loop (one less
        # dynamic dispatch per request); any other policy goes through select.
        self._frfcfs_fast = type(policy) is FrFcfsPolicy

    # ------------------------------------------------------------- scheduling
    @property
    def drain_mode(self) -> bool:
        return self._drain_mode

    @property
    def service_pending(self) -> bool:
        return self._service_pending

    def schedule_service(self) -> None:
        """Arm the service callback if work is pending and it is not armed."""
        if self._service_pending:
            return
        controller = self.controller
        if not controller._read_queue and not controller._write_queue:
            return
        self._service_pending = True
        when = self._next_decision_ns
        now = self.engine._now
        if when < now:
            when = now
        self.engine.schedule_callback(when, self._service)

    # -------------------------------------------------------------- servicing
    def _service(self) -> None:
        """Service one request -- and, when provably safe, a whole burst."""
        self._service_pending = False
        engine = self.engine
        channel = self.channel
        controller = self.controller
        policy = self.policy
        batching = self.batching
        access = channel.access
        schedule_cb = engine.schedule_callback
        finish = controller._finish
        frfcfs_fast = self._frfcfs_fast
        on_remove = self._policy_on_remove
        read_queue = controller._read_queue
        write_queue = controller._write_queue
        config = self.config
        scan_prefix = IndexedQueue.SCAN_PREFIX
        served = controller._served
        row_hits = controller._row_hit_counter
        read_bw = controller._read_bw
        write_bw = controller._write_bw
        while True:
            # Inlined _pick_queue (write-drain watermark logic).
            writes = len(write_queue._pending)
            if self._drain_mode:
                if writes <= config.write_low_watermark:
                    self._drain_mode = False
            elif writes >= config.write_high_watermark:
                self._drain_mode = True
            if self._drain_mode and writes:
                queue = write_queue
            elif read_queue._pending:
                queue = read_queue
            elif writes:
                queue = write_queue
            else:
                return
            if frfcfs_fast:
                # Inlined head of IndexedQueue.oldest_hit: hit-rich traffic
                # resolves within the first SCAN_PREFIX queued requests.
                banks = channel._banks
                request = None
                scanned = 0
                for candidate in queue._pending.values():
                    bank_key, row = candidate._bank_row
                    state = banks.get(bank_key)
                    if state is not None and state.open_row == row:
                        request = candidate
                        break
                    scanned += 1
                    if scanned >= scan_prefix:
                        break
                if request is None:
                    if len(queue._pending) <= scanned:
                        request = queue.first()
                    else:
                        request = queue.oldest_hit(channel) or queue.first()
            else:
                request = policy.select(queue, channel)
            queue.remove(request)
            if on_remove is not None:
                on_remove(request)
            is_write = request.is_write
            timing = access(request.dram_addr, is_write, engine._now, True)
            cas = timing.cas_time
            data_end = timing.data_end
            request.issue_ns = cas
            request.row_state = timing.row_state
            # Inlined _account_issue (incl. BandwidthTracker.record).
            served.value += 1
            if timing.row_state == "hit":
                row_hits.value += 1
            tracker = write_bw if is_write else read_bw
            size = request.size_bytes
            tracker.total_bytes += size
            if tracker.first_time_ns is None or data_end < tracker.first_time_ns:
                tracker.first_time_ns = data_end
            if tracker.last_time_ns is None or data_end > tracker.last_time_ns:
                tracker.last_time_ns = data_end
            tracker._events.append((data_end, size))
            schedule_cb(data_end, partial(finish, request, data_end))
            if controller._slot_listeners:
                controller._notify_slot_listeners()
            now = engine._now
            next_decision = cas if cas > now else now
            self._next_decision_ns = next_decision
            if self._service_pending:
                # A slot listener re-armed the service mid-issue (with the
                # pre-issue decision time, exactly like the seed's
                # ``_schedule_service`` guard); defer to that event.
                return
            if not read_queue._pending and not write_queue._pending:
                return
            if batching:
                ticks = ns_to_ticks(next_decision)
                until = engine._until_ticks
                if until is not None and ticks > until:
                    # An in-progress run(until=...) must stop at its horizon:
                    # schedule the service event instead of advancing past it.
                    self._service_pending = True
                    engine._push_callback(ticks, next_decision, self._service)
                    return
                # Inlined peek: the heap head is almost never a cancelled
                # event; fall back to the engine's cancelled-popping peek
                # only when it is.
                heap = engine._queue
                if heap:
                    head = heap[0]
                    if len(head) == 4 or not head[2].cancelled:
                        peek = head[0]
                    else:
                        peek = engine.peek_next_ticks()
                else:
                    peek = None
                if peek is None or ticks < peek:
                    # Event-free drain fast path: the per-request path would
                    # have scheduled a service event at ``next_decision`` and
                    # popped it straight back -- skip the heap round-trip.
                    # Safety is established by the peek, so the clock moves
                    # directly (the engine-checked advance_to would re-peek).
                    engine._now = next_decision
                    engine._now_ticks = ticks
                    continue
                self._service_pending = True
                engine._push_callback(ticks, next_decision, self._service)
                return
            self._service_pending = True
            schedule_cb(next_decision, self._service)
            return

    # ------------------------------------------------------------------ reset
    def reset(self) -> None:
        """Reset scheduling state to power-on (kernel must be idle)."""
        self._drain_mode = False
        self._next_decision_ns = 0.0
        self._service_pending = False
        self.policy.reset()


# --------------------------------------------------------------------- registry
def _object_kernel():
    return ServiceKernel


def _soa_kernel():
    # Imported lazily to avoid a cycle (soa imports this module).
    from repro.memctrl.soa import SoaServiceKernel

    return SoaServiceKernel


#: The service-kernel axis on the shared variant-registry mechanism.  Kernel
#: specs are exact names with no ``:args`` suffix, so the axis opts out of
#: name normalisation and spec parsing.
KERNELS = VariantRegistry(
    "service kernel",
    error=ValueError,
    known_label="available",
    dup_label="kernel",
    normalize_names=False,
    parse_specs=False,
)
KERNELS.register(
    "object", _object_kernel, "batched per-object service kernel (default)"
)
KERNELS.register(
    "soa", _soa_kernel, "struct-of-arrays burst service kernel (bit-identical)"
)


def available_kernels() -> tuple:
    """Names accepted by :data:`MemCtrlConfig.kernel` (and ``--kernel``)."""
    return tuple(KERNELS.names())


def kernel_class(spec: str):
    """Resolve a kernel spec string to its implementation class.

    ``object`` is the batched per-object kernel above; ``soa`` is the
    struct-of-arrays burst kernel (:mod:`repro.memctrl.soa`, imported lazily
    to avoid a cycle).  Both are bit-identical at the event level -- the
    differential suite (``tests/differential``) enforces it.
    """
    return KERNELS.create(spec)


__all__ = ["KERNELS", "ServiceKernel", "available_kernels", "kernel_class"]
