"""Struct-of-arrays DRAM service kernel (``MemCtrlConfig.kernel = "soa"``).

The object kernel (:class:`~repro.memctrl.kernel.ServiceKernel`) already
batches *scheduling* -- it issues whole bursts inside one simulation event
when a heap peek proves no other event intervenes -- but it still pays
per-request Python mechanics on every issue: a ``functools.partial`` plus a
heap push for the completion, a heap pop and dispatch when it fires, and
per-request counter/tracker updates.  The SoA kernel keeps the *decisions*
(and therefore every float computed and every event ordering) identical while
turning those mechanics into columns:

* **Deferred completion columns.**  Issued requests append one
  ``(ticks, sequence, finish_ns, request)`` row to a pending-completions
  list instead of entering the engine heap individually.  Engine sequence
  numbers are still *reserved* per completion at issue time, so same-tick
  ordering against foreign events is reproduced exactly.  A single *flush*
  heap entry -- keyed by the head row's reserved ``(ticks, sequence)``, i.e.
  exactly the key the object kernel's first completion event would have --
  represents the whole column in the heap.  When it fires, the flush drains
  completions for as long as the heap head proves no foreign event comes
  first (the same proof the service loop uses), re-arming itself otherwise.
  Finish times on one channel are strictly increasing and sequences are
  allocated in issue order, so the deque is always sorted and its head is
  always the earliest pending completion.
* **Bulk issue-side statistics.**  Served/row-hit counters and
  bandwidth-tracker rows accumulate in locals and flush at the service
  loop's exit points (and before slot listeners run, the only place foreign
  code can observe the controller mid-loop).
* **Inlined timing arithmetic.**  The DDR4 column-access arithmetic of
  :meth:`~repro.dram.channel.DdrChannel.access` is transcribed into the
  loop with bank/rank lookups cached across consecutive same-bank picks.
  Every float operation is performed in the same order on the same values,
  so the computed times are bit-identical; the rare refresh-due case
  delegates to the channel's generic path.

``engine.events_fired`` counts one fired event per *delivered* completion in
both kernels (the flush drain increments it for rows it delivers without a
heap round-trip), so ``repro bench`` events/sec stays comparable across
kernels.

Correctness is enforced by ``tests/differential/`` (property-based SoA ==
object comparison plus a pure-Python single-bank timing oracle) and by
regenerating every committed ``results/`` table under ``kernel=soa``.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.dram.bank import BankState
from repro.memctrl.kernel import ServiceKernel
from repro.memctrl.queues import IndexedQueue
from repro.sim.engine import ns_to_ticks


class SoaServiceKernel(ServiceKernel):
    """Burst-issuing kernel over completion columns; bit-identical decisions."""

    __slots__ = (
        "_pending_completions",
        "_flush_armed",
        "_read_rows",
        "_write_rows",
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Sorted rows of (ticks, reserved sequence, finish_ns, request).
        self._pending_completions = []
        self._flush_armed = False
        # Reused (data_end, size) row buffers for the bandwidth trackers;
        # emptied by _commit, so one allocation serves every service call.
        self._read_rows = []
        self._write_rows = []

    # -------------------------------------------------------------- completion
    def _flush(self) -> None:
        """Deliver the head completion and drain successors while provably next.

        Fired as a heap event carrying the head row's reserved sequence; the
        engine has already advanced the clock to the head's finish time.
        After each delivery the next row is delivered without a heap
        round-trip iff its ``(ticks, sequence)`` precedes the live heap head
        (and the ``run(until=...)`` horizon allows it) -- precisely when the
        object kernel's per-request completion event would have been popped
        next anyway.
        """
        self._flush_armed = False
        pending = self._pending_completions
        if not pending:  # reset() raced a stale flush entry; nothing to do
            return
        engine = self.engine
        finish = self.controller._finish
        heap = engine._queue
        index = 0
        count = len(pending)
        try:
            while True:
                row = pending[index]
                index += 1
                finish(row[3], row[2])
                if index >= count:
                    return
                nticks, nseq, ntime, _ = pending[index]
                until = engine._until_ticks
                if until is not None and nticks > until:
                    heappush(heap, (nticks, nseq, ntime, self._flush))
                    self._flush_armed = True
                    return
                # Pop cancelled events off the heap top, then compare the
                # live head against the next completion's reserved key.
                while heap:
                    head = heap[0]
                    if len(head) == 4 or not head[2].cancelled:
                        break
                    heappop(heap)
                    head[2]._engine = None
                    engine._cancelled_pending -= 1
                if heap:
                    head = heap[0]
                    if head[0] < nticks or (
                        head[0] == nticks and head[1] < nseq
                    ):
                        heappush(heap, (nticks, nseq, ntime, self._flush))
                        self._flush_armed = True
                        return
                engine._now = ntime
                engine._now_ticks = nticks
                engine.events_fired += 1
        finally:
            del pending[:index]

    # -------------------------------------------------------------- servicing
    def _commit(
        self,
        last_cas_channel,
        last_read_cas,
        last_write_data_end,
        bus_free_time,
        busy_data_ns,
        served_delta,
        row_hit_delta,
        read_rows,
        read_bytes,
        write_rows,
        write_bytes,
    ) -> None:
        """Write mirrored channel timing state and bulk stats back.

        A plain method (not a closure over the service loop's locals): closing
        over them would turn every hot-loop variable into a cell variable and
        slow each iteration down.  Called once per service-loop exit.
        """
        channel = self.channel
        controller = self.controller
        channel._last_cas_channel = last_cas_channel
        channel._last_read_cas = last_read_cas
        channel._last_write_data_end = last_write_data_end
        channel.bus_free_time = bus_free_time
        channel.busy_data_ns = busy_data_ns
        if served_delta:
            controller._served.value += served_delta
        if row_hit_delta:
            controller._row_hit_counter.value += row_hit_delta
        if read_rows:
            tracker = controller._read_bw
            tracker.total_bytes += read_bytes
            first = read_rows[0][0]
            last = read_rows[-1][0]
            if tracker.first_time_ns is None or first < tracker.first_time_ns:
                tracker.first_time_ns = first
            if tracker.last_time_ns is None or last > tracker.last_time_ns:
                tracker.last_time_ns = last
            tracker._events.extend(read_rows)
            del read_rows[:]
        if write_rows:
            tracker = controller._write_bw
            tracker.total_bytes += write_bytes
            first = write_rows[0][0]
            last = write_rows[-1][0]
            if tracker.first_time_ns is None or first < tracker.first_time_ns:
                tracker.first_time_ns = first
            if tracker.last_time_ns is None or last > tracker.last_time_ns:
                tracker.last_time_ns = last
            tracker._events.extend(write_rows)
            del write_rows[:]

    def _service(self) -> None:  # noqa: C901 - transcribed hot loop
        """Service a burst: object-kernel decisions over SoA mechanics."""
        self._service_pending = False
        engine = self.engine
        channel = self.channel
        controller = self.controller
        policy = self.policy
        batching = self.batching
        config = self.config
        timing = channel.timing
        finish = controller._finish
        frfcfs_fast = self._frfcfs_fast
        on_remove = self._policy_on_remove
        read_queue = controller._read_queue
        write_queue = controller._write_queue
        scan_prefix = IndexedQueue.SCAN_PREFIX
        pending = self._pending_completions
        heap = engine._queue
        banks = channel._banks
        ranks = channel._ranks

        # Hoisted timing constants (read-only).
        tCCD_S = timing.tCCD_S
        tCCD_L = timing.tCCD_L
        tRTW = timing.tRTW
        tWTR_L = timing.tWTR_L
        tCWL = timing.tCWL
        tCL = timing.tCL
        tBL = timing.tBL
        tRTP = timing.tRTP
        tWR = timing.tWR

        # Channel timing state mirrored into locals for the loop, written
        # back at every exit (no foreign code runs while they are stale).
        last_cas_bankgroup = channel._last_cas_bankgroup
        last_cas_channel = channel._last_cas_channel
        last_read_cas = channel._last_read_cas
        last_write_data_end = channel._last_write_data_end
        bus_free_time = channel.bus_free_time
        busy_data_ns = channel.busy_data_ns

        # Issue-side statistics accumulated in bulk (row buffers are reused
        # instance lists; _commit empties them).
        commit = self._commit
        served_delta = 0
        row_hit_delta = 0
        read_rows = self._read_rows
        write_rows = self._write_rows
        read_bytes = 0
        write_bytes = 0

        # Per-bank lookup cache across consecutive picks.
        cached_key = -1
        cached_bank = None

        now = engine._now

        while True:
            # Inlined _pick_queue (write-drain watermark logic).
            writes = len(write_queue._pending)
            if self._drain_mode:
                if writes <= config.write_low_watermark:
                    self._drain_mode = False
            elif writes >= config.write_high_watermark:
                self._drain_mode = True
            if self._drain_mode and writes:
                queue = write_queue
            elif read_queue._pending:
                queue = read_queue
            elif writes:
                queue = write_queue
            else:
                commit(
                    last_cas_channel,
                    last_read_cas,
                    last_write_data_end,
                    bus_free_time,
                    busy_data_ns,
                    served_delta,
                    row_hit_delta,
                    read_rows,
                    read_bytes,
                    write_rows,
                    write_bytes,
                )
                return
            if frfcfs_fast:
                # Inlined head of IndexedQueue.oldest_hit (see ServiceKernel).
                request = None
                scanned = 0
                for candidate in queue._pending.values():
                    bank_key, crow = candidate._bank_row
                    state = banks.get(bank_key)
                    if state is not None and state.open_row == crow:
                        request = candidate
                        break
                    scanned += 1
                    if scanned >= scan_prefix:
                        break
                if request is None:
                    if len(queue._pending) <= scanned:
                        request = queue.first()
                    else:
                        request = queue.oldest_hit(channel) or queue.first()
            else:
                request = policy.select(queue, channel)
            queue.remove(request)
            if on_remove is not None:
                on_remove(request)
            is_write = request.is_write

            # ---- inlined DdrChannel.access(addr, is_write, now, True) ----
            addr = request.dram_addr
            key, row = request._bank_row
            if key == cached_key:
                bank = cached_bank
            else:
                bank = banks.get(key)
                if bank is None:
                    bank = banks[key] = BankState()
                cached_key = key
                cached_bank = bank
            addr_rank = addr.rank
            rank = ranks[addr_rank]
            if now >= rank.next_refresh_due:
                # Rare refresh-due path: mirror state back and delegate the
                # whole access to the channel's generic implementation.
                channel._last_cas_channel = last_cas_channel
                channel._last_read_cas = last_read_cas
                channel._last_write_data_end = last_write_data_end
                channel.bus_free_time = bus_free_time
                channel.busy_data_ns = busy_data_ns
                timing_out = channel.access(addr, is_write, now, True)
                cas = timing_out.cas_time
                data_end = timing_out.data_end
                row_state = timing_out.row_state
                last_cas_channel = channel._last_cas_channel
                last_read_cas = channel._last_read_cas
                last_write_data_end = channel._last_write_data_end
                bus_free_time = channel.bus_free_time
                busy_data_ns = channel.busy_data_ns
            else:
                open_row = bank.open_row
                if open_row is None:
                    row_state = "closed"
                    bank.row_misses += 1
                    candidate = now
                elif open_row == row:
                    row_state = "hit"
                    bank.row_hits += 1
                else:
                    row_state = "conflict"
                    bank.row_conflicts += 1
                    candidate = bank.precharge(now, timing)
                if row_state != "hit":
                    act_candidate = rank.earliest_activate(
                        max(candidate, bank.ready_act), same_bankgroup=False
                    )
                    act_time = bank.activate(act_candidate, row, timing)
                    rank.record_activate(act_time)

                bg_key = addr_rank * channel._bankgroups_per_rank + addr.bankgroup
                last_bg = last_cas_bankgroup.get(bg_key)
                constraint = last_cas_channel + tCCD_S
                if last_bg is not None:
                    bg_constraint = last_bg + tCCD_L
                    if bg_constraint > constraint:
                        constraint = bg_constraint
                if is_write:
                    turnaround = last_read_cas + tRTW
                    latency = tCWL
                else:
                    turnaround = last_write_data_end + tWTR_L
                    latency = tCL
                if turnaround > constraint:
                    constraint = turnaround
                bus_bound = bus_free_time - latency
                if bus_bound > constraint:
                    constraint = bus_bound

                cas = max(now, bank.ready_cas, constraint)
                data_start = cas + latency
                if bus_free_time > data_start:
                    data_start = bus_free_time
                data_end = data_start + tBL

                if last_bg is None or cas > last_bg:
                    last_cas_bankgroup[bg_key] = cas
                if cas > last_cas_channel:
                    last_cas_channel = cas
                if is_write:
                    if data_end > last_write_data_end:
                        last_write_data_end = data_end
                    # Inlined BankState.record_write.
                    wr_ready = data_end + tWR
                    if wr_ready > bank.ready_pre:
                        bank.ready_pre = wr_ready
                else:
                    if cas > last_read_cas:
                        last_read_cas = cas
                    # Inlined BankState.record_read.
                    rd_ready = cas + tRTP
                    if rd_ready > bank.ready_pre:
                        bank.ready_pre = rd_ready
                bus_free_time = data_end
                busy_data_ns += tBL
            # ---- end inlined access ----

            request.issue_ns = cas
            request.row_state = row_state
            served_delta += 1
            if row_state == "hit":
                row_hit_delta += 1
            size = request.size_bytes
            if is_write:
                write_bytes += size
                write_rows.append((data_end, size))
            else:
                read_bytes += size
                read_rows.append((data_end, size))

            # Reserve the completion's engine sequence (exactly one per
            # completion, at the same allocation point as the object
            # kernel's schedule_callback) and append its column row.
            sequence = engine._sequence
            engine._sequence = sequence + 1
            end_ticks = ns_to_ticks(data_end)
            pending.append((end_ticks, sequence, data_end, request))
            if not self._flush_armed:
                heappush(heap, (end_ticks, sequence, data_end, self._flush))
                self._flush_armed = True

            if controller._slot_listeners:
                commit(
                    last_cas_channel,
                    last_read_cas,
                    last_write_data_end,
                    bus_free_time,
                    busy_data_ns,
                    served_delta,
                    row_hit_delta,
                    read_rows,
                    read_bytes,
                    write_rows,
                    write_bytes,
                )
                served_delta = 0
                row_hit_delta = 0
                read_bytes = 0
                write_bytes = 0
                last_cas_channel = channel._last_cas_channel
                last_read_cas = channel._last_read_cas
                last_write_data_end = channel._last_write_data_end
                bus_free_time = channel.bus_free_time
                busy_data_ns = channel.busy_data_ns
                controller._notify_slot_listeners()
            next_decision = cas if cas > now else now
            self._next_decision_ns = next_decision
            if self._service_pending:
                # A slot listener re-armed the service mid-issue; defer to
                # that event (see ServiceKernel._service).
                commit(
                    last_cas_channel,
                    last_read_cas,
                    last_write_data_end,
                    bus_free_time,
                    busy_data_ns,
                    served_delta,
                    row_hit_delta,
                    read_rows,
                    read_bytes,
                    write_rows,
                    write_bytes,
                )
                return
            if not read_queue._pending and not write_queue._pending:
                commit(
                    last_cas_channel,
                    last_read_cas,
                    last_write_data_end,
                    bus_free_time,
                    busy_data_ns,
                    served_delta,
                    row_hit_delta,
                    read_rows,
                    read_bytes,
                    write_rows,
                    write_bytes,
                )
                return
            if batching:
                ticks = ns_to_ticks(next_decision)
                until = engine._until_ticks
                if until is not None and ticks > until:
                    self._service_pending = True
                    commit(
                        last_cas_channel,
                        last_read_cas,
                        last_write_data_end,
                        bus_free_time,
                        busy_data_ns,
                        served_delta,
                        row_hit_delta,
                        read_rows,
                        read_bytes,
                        write_rows,
                        write_bytes,
                    )
                    engine._push_callback(ticks, next_decision, self._service)
                    return
                if heap:
                    head = heap[0]
                    if len(head) == 4 or not head[2].cancelled:
                        peek = head[0]
                    else:
                        peek = engine.peek_next_ticks()
                else:
                    peek = None
                if peek is None or ticks < peek:
                    engine._now = next_decision
                    engine._now_ticks = ticks
                    now = next_decision
                    continue
                self._service_pending = True
                commit(
                    last_cas_channel,
                    last_read_cas,
                    last_write_data_end,
                    bus_free_time,
                    busy_data_ns,
                    served_delta,
                    row_hit_delta,
                    read_rows,
                    read_bytes,
                    write_rows,
                    write_bytes,
                )
                engine._push_callback(ticks, next_decision, self._service)
                return
            self._service_pending = True
            commit(
                last_cas_channel,
                last_read_cas,
                last_write_data_end,
                bus_free_time,
                busy_data_ns,
                served_delta,
                row_hit_delta,
                read_rows,
                read_bytes,
                write_rows,
                write_bytes,
            )
            engine.schedule_callback(next_decision, self._service)
            return

    # ------------------------------------------------------------------ reset
    def reset(self) -> None:
        super().reset()
        self._pending_completions.clear()
        self._flush_armed = False


__all__ = ["SoaServiceKernel"]
