"""Struct-of-arrays burst container for bulk request admission.

A :class:`RequestBurst` describes many 64 B accesses as parallel numpy
columns -- physical addresses, sizes, tenant-id codes, and (once admitted)
arrival ticks -- instead of a list of :class:`MemoryRequest` objects.  Bulk
producers (the LLM serving driver submits hundreds of lines per iteration
from one event callback) build one burst and hand it to
:meth:`repro.system.PimSystem.submit_burst`, which decodes the address column
through the compiled batch decoder (:meth:`BitFieldMapping.map_batch`) in one
vectorized pass.

Per-request ``MemoryRequest`` objects are still materialized at the admission
boundary -- the indexed queues, scheduler policies, and completion callbacks
are keyed on request identity -- but all address arithmetic (domain dispatch,
DRAM coordinate decode, flat bank keys) happens on whole columns first, and
the objects are built from precomputed plain-int fields.  The admission
order, arrival stamps, controller sequence numbers and trace-hook firing are
exactly those of submitting the same requests one at a time; the differential
suite compares both paths end to end.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.memctrl.request import MemoryRequest, RequestStream

_NO_TENANT = 0

#: Smallest window worth the columnar submit.  Building a burst and running
#: the vectorized decode costs a fixed ~10 numpy calls; measured on the
#: bench matrix, that only amortizes from a few dozen rows up, and the
#: steady-state refill windows of backpressured engines are far below that.
#: Producers issue narrower windows through the scalar ``submit`` path
#: (bit-identical by construction; the differential suite covers both).
MIN_BURST_WINDOW = 32


class RequestBurst:
    """Columnar description of a burst of memory accesses (one row each)."""

    __slots__ = (
        "phys_addrs",
        "sizes",
        "is_write",
        "tenant_codes",
        "tenant_table",
        "arrival_ticks",
        "fabric_hops",
        "stream",
        "source_id",
        "on_complete",
        "pim_core_ids",
    )

    def __init__(
        self,
        phys_addrs: Sequence[int],
        is_write: Union[bool, Sequence[bool]],
        sizes: Union[int, Sequence[int]] = 64,
        tenants: Union[None, str, Sequence[Optional[str]]] = None,
        stream: RequestStream = RequestStream.OTHER,
        source_id: int = 0,
        on_complete: Optional[Callable[[MemoryRequest], None]] = None,
        pim_core_ids: Union[None, int, Sequence[int]] = None,
    ) -> None:
        addrs = np.ascontiguousarray(phys_addrs, dtype=np.int64)
        if addrs.ndim != 1:
            raise ValueError("phys_addrs must be one-dimensional")
        n = addrs.shape[0]
        self.phys_addrs = addrs
        if isinstance(is_write, (bool, np.bool_)):
            self.is_write = np.full(n, bool(is_write), dtype=bool)
        else:
            self.is_write = np.ascontiguousarray(is_write, dtype=bool)
            if self.is_write.shape[0] != n:
                raise ValueError("is_write column length mismatch")
        if isinstance(sizes, (int, np.integer)):
            self.sizes = np.full(n, int(sizes), dtype=np.int64)
        else:
            self.sizes = np.ascontiguousarray(sizes, dtype=np.int64)
            if self.sizes.shape[0] != n:
                raise ValueError("sizes column length mismatch")
        # Tenants are interned into a small table plus an int64 code column
        # (code 0 is "no tenant"); bursts are homogeneous or near-homogeneous
        # in tenant, so the table stays tiny.
        table: List[Optional[str]] = [None]
        if tenants is None or isinstance(tenants, str):
            if tenants is not None:
                table.append(tenants)
                codes = np.full(n, 1, dtype=np.int64)
            else:
                codes = np.zeros(n, dtype=np.int64)
        else:
            if len(tenants) != n:
                raise ValueError("tenants column length mismatch")
            index = {None: _NO_TENANT}
            codes = np.empty(n, dtype=np.int64)
            for i, tenant in enumerate(tenants):
                code = index.get(tenant)
                if code is None:
                    code = len(table)
                    index[tenant] = code
                    table.append(tenant)
                codes[i] = code
        self.tenant_codes = codes
        self.tenant_table = table
        #: Filled by ``submit_burst`` for the accepted prefix (integer
        #: picoseconds -- the engine's ``now_ps`` view, which fits an int64).
        self.arrival_ticks = np.zeros(n, dtype=np.int64)
        #: Per-row fabric hop counts, stamped at injection when a fabric is
        #: active (zeros under the default direct path -- X-Y routes are
        #: deterministic, so the count is known before the flit moves).
        self.fabric_hops = np.zeros(n, dtype=np.int64)
        self.stream = stream
        self.source_id = source_id
        self.on_complete = on_complete
        # PIM-core affinity column (or a scalar for the whole burst).  The
        # engine pumps stamp it on the materialized requests so trace hooks
        # observe exactly what the object pump would have produced.
        if pim_core_ids is None or isinstance(pim_core_ids, (int, np.integer)):
            self.pim_core_ids = (
                None if pim_core_ids is None else int(pim_core_ids)
            )
        else:
            column = np.ascontiguousarray(pim_core_ids, dtype=np.int64)
            if column.shape[0] != n:
                raise ValueError("pim_core_ids column length mismatch")
            self.pim_core_ids = column

    def __len__(self) -> int:
        return self.phys_addrs.shape[0]

    def pim_core_at(self, index: int) -> Optional[int]:
        cores = self.pim_core_ids
        if cores is None or isinstance(cores, int):
            return cores
        return int(cores[index])

    def tenant_at(self, index: int) -> Optional[str]:
        return self.tenant_table[self.tenant_codes[index]]


__all__ = ["MIN_BURST_WINDOW", "RequestBurst"]
