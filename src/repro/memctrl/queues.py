"""Indexed request queues for the memory-controller service kernel.

The seed's controller kept each queue as a plain list and re-scanned it on
every scheduling decision (``O(queue depth)`` per pick, with a ``list.remove``
on top -- quadratic under deep queues).  :class:`IndexedQueue` replaces that
with structures maintained incrementally:

* an insertion-ordered ``seq -> request`` dict (Python dicts preserve
  insertion order, so FIFO head lookup is O(1)); and
* a **lazily built** ``bank -> row -> {seq -> request}`` index, so "the
  oldest request that hits an open row" is found by looking at each *bank*
  with pending work (bounded by the channel's bank count) instead of each
  queued request.  Hit-rich traffic is resolved by a short arrival-order
  prefix scan and never pays for the index at all; the index materialises
  the first time a pick actually falls through the prefix, and is then
  maintained incrementally until the queue drains.

Requests carry their queue bookkeeping in two private slots (``_seq``,
``_bank_row``) stamped by the admission front-end, so removal needs no
recomputation and no scanning.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, TYPE_CHECKING

from repro.memctrl.request import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dram.channel import DdrChannel


class IndexedQueue:
    """FIFO request queue with a lazily materialised (bank, row) hit index."""

    __slots__ = ("_pending", "_by_bank", "_indexed")

    #: Queue prefix scanned in arrival order before consulting the bank
    #: index.  Row-hit-rich traffic resolves within a few entries; miss-heavy
    #: deep queues pay O(PREFIX + banks-with-work) instead of O(depth).
    SCAN_PREFIX = 4

    def __init__(self) -> None:
        #: seq -> request, in arrival order.
        self._pending: Dict[int, MemoryRequest] = {}
        #: bank_key -> row -> {seq -> request}, each inner dict in arrival
        #: order.  Only populated while ``_indexed`` is True.
        self._by_bank: Dict[int, Dict[int, Dict[int, MemoryRequest]]] = {}
        self._indexed = False

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def _index_add(self, request: MemoryRequest) -> None:
        seq = request._seq
        bank_key, row = request._bank_row
        rows = self._by_bank.get(bank_key)
        if rows is None:
            self._by_bank[bank_key] = {row: {seq: request}}
            return
        inner = rows.get(row)
        if inner is None:
            rows[row] = {seq: request}
        else:
            inner[seq] = request

    def add(self, request: MemoryRequest) -> None:
        """Append a request (``_seq`` and ``_bank_row`` must be stamped)."""
        self._pending[request._seq] = request
        if self._indexed:
            self._index_add(request)

    def remove(self, request: MemoryRequest) -> None:
        """Remove a previously added request in O(1)."""
        del self._pending[request._seq]
        if self._indexed:
            seq = request._seq
            bank_key, row = request._bank_row
            rows = self._by_bank[bank_key]
            inner = rows[row]
            del inner[seq]
            if not inner:
                del rows[row]
                if not rows:
                    del self._by_bank[bank_key]
                    if not self._by_bank:
                        self._indexed = False

    def first(self) -> Optional[MemoryRequest]:
        """The oldest pending request, or ``None`` when empty."""
        for request in self._pending.values():
            return request
        return None

    def oldest_hit(self, channel: "DdrChannel") -> Optional[MemoryRequest]:
        """The oldest request targeting a currently open row, or ``None``.

        Hybrid search: first scan the queue head in arrival order (the first
        hit found *is* the oldest hit -- exactly the request a front-to-back
        FR-FCFS scan returns); if the head of the queue is hit-free, consult
        the (bank, row) index, where each bank with pending work contributes
        at most its FIFO-first same-row request and the oldest candidate
        wins.  Either way the result matches the seed's linear scan while
        bounding the work at O(PREFIX + banks) rather than O(queue depth).
        """
        banks = channel._banks
        pending = self._pending
        scanned = 0
        for request in pending.values():
            bank_key, row = request._bank_row
            state = banks.get(bank_key)
            if state is not None and state.open_row == row:
                return request
            scanned += 1
            if scanned >= self.SCAN_PREFIX:
                break
        if len(pending) <= scanned:
            return None
        if not self._indexed:
            # First fall-through of this queue episode: materialise the
            # index, then keep it incrementally up to date.
            self._by_bank.clear()
            index_add = self._index_add
            for request in pending.values():
                index_add(request)
            self._indexed = True
        best_seq = -1
        best: Optional[MemoryRequest] = None
        for bank_key, rows in self._by_bank.items():
            state = banks.get(bank_key)
            if state is None:
                continue
            inner = rows.get(state.open_row)  # open_row None never matches a row key
            if not inner:
                continue
            for seq in inner:
                if best is None or seq < best_seq:
                    best_seq = seq
                    best = inner[seq]
                break
        return best

    def requests(self) -> Iterator[MemoryRequest]:
        """Pending requests in arrival order (oldest first)."""
        return iter(self._pending.values())

    def clear(self) -> None:
        self._pending.clear()
        self._by_bank.clear()
        self._indexed = False


__all__ = ["IndexedQueue"]
