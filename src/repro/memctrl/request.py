"""Memory request objects exchanged between traffic sources and controllers."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.mapping.address import DramAddress

_request_ids = itertools.count()


class RequestStream(enum.Enum):
    """Logical traffic stream a request belongs to (used for accounting only)."""

    TRANSFER_READ = "transfer-read"
    TRANSFER_WRITE = "transfer-write"
    MEMCPY_READ = "memcpy-read"
    MEMCPY_WRITE = "memcpy-write"
    CONTENDER = "contender"
    OTHER = "other"


@dataclass(eq=False, slots=True)
class MemoryRequest:
    """One 64 B memory access.

    ``on_complete`` fires when the request's data burst finishes on the DRAM
    data bus (reads and writes alike).  ``dram_addr``, ``domain`` and
    ``channel_id`` are filled in by the system-level mapper before the request
    reaches a controller.

    Requests are identity objects (``eq=False``): two distinct requests are
    never "the same", and containers holding them never fall back to slow
    field-by-field comparison.  ``slots=True`` keeps the per-request footprint
    small and makes any stray attribute write an immediate ``AttributeError``
    -- millions of these are created on the simulator's hottest path.
    """

    phys_addr: int
    is_write: bool
    size_bytes: int = 64
    stream: RequestStream = RequestStream.OTHER
    source_id: int = 0
    pim_core_id: Optional[int] = None
    #: Scenario tenant this request belongs to (``None`` outside multi-tenant
    #: runs).  Controllers bucket per-tenant latency/traffic stats on it.
    tenant: Optional[str] = None
    on_complete: Optional[Callable[["MemoryRequest"], None]] = None
    request_id: int = field(default_factory=_request_ids.__next__)

    # Filled by the mapper / controller.
    domain: Optional[str] = None
    dram_addr: Optional[DramAddress] = None
    channel_id: Optional[int] = None
    arrival_ns: Optional[float] = None
    issue_ns: Optional[float] = None
    completion_ns: Optional[float] = None
    row_state: Optional[str] = None

    # Filled by an interconnect fabric at delivery (``None`` under the
    # default ``fabric="none"`` direct path): hop count of the X-Y route and
    # time spent waiting for link credits on top of the pure hop latency.
    fabric_hops: Optional[int] = None
    fabric_wait_ns: Optional[float] = None

    # Queue bookkeeping stamped by the controller front-end (admission order
    # and (bank, row) coordinates), consumed by the indexed queues and the
    # scheduler policies.  Not part of the request's public surface.
    _seq: int = field(default=-1, init=False, repr=False)
    _bank_row: Optional[Tuple[int, int]] = field(default=None, init=False, repr=False)

    @property
    def latency_ns(self) -> Optional[float]:
        """Queueing + service latency, available once the request completed."""
        if self.arrival_ns is None or self.completion_ns is None:
            return None
        return self.completion_ns - self.arrival_ns

    def complete(self, time_ns: float) -> None:
        """Mark the request finished and invoke its completion callback."""
        self.completion_ns = time_ns
        if self.on_complete is not None:
            self.on_complete(self)


__all__ = ["MemoryRequest", "RequestStream"]
