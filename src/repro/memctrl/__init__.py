"""Host-side memory controllers.

One :class:`~repro.memctrl.controller.ChannelController` exists per memory
channel (DRAM and PIM alike).  Controllers hold 64-entry read and write
request queues, schedule with FR-FCFS, drain writes with a high/low watermark
policy, and drive the command-level DDR4 channel model in :mod:`repro.dram`.
A :class:`~repro.memctrl.system.MemorySystem` groups the controllers of one
memory domain and routes decoded requests to the right channel.
"""

from repro.memctrl.controller import ChannelController
from repro.memctrl.request import MemoryRequest, RequestStream
from repro.memctrl.system import MemorySystem

__all__ = ["ChannelController", "MemoryRequest", "MemorySystem", "RequestStream"]
